// Quickstart: the whole ERIC flow in one page.
//
//   1. enroll a device (fab time)            -> PUF-based key handshake
//   2. compile + sign + encrypt a program    -> program package
//   3. ship the package over the wire
//   4. device HDE decrypts, validates, runs  -> trusted execution
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"

int main() {
  using namespace eric;

  // --- Fab time: enroll the device's PUF and hand the PUF-based key to
  // the software source (the paper's out-of-band handshake).
  crypto::KeyConfig key_config;                 // epoch 0, default domain
  core::TrustedDevice device(/*device_seed=*/0xC0FFEE, key_config);
  const crypto::Key256 handshake_key = device.Enroll();

  // --- Software source: compile and package a program for that device.
  core::SoftwareSource source(handshake_key, key_config);
  const char* program = R"(
    fn greet() {
      putc(72); putc(101); putc(108); putc(108); putc(111);   // "Hello"
      putc(33); putc(10);                                     // "!\n"
      return 0;
    }
    fn main() {
      greet();
      var sum = 0;
      var i = 1;
      while (i <= 10) { sum = sum + i; i = i + 1; }
      return sum;   // 55
    }
  )";
  auto built =
      source.CompileAndPackage(program, core::EncryptionPolicy::Full());
  if (!built.ok()) {
    std::printf("build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t> wire = pkg::Serialize(built->packaging.package);
  std::printf("package: %zu bytes (plaintext program was %zu bytes)\n",
              wire.size(), built->compile.program.image.size());

  // --- Target device: HDE decrypts + validates, then the SoC runs it.
  auto run = device.ReceiveAndRun(wire);
  if (!run.ok()) {
    std::printf("device rejected package: %s\n",
                run.status().ToString().c_str());
    return 1;
  }
  std::printf("device console: %s", run->console_output.c_str());
  std::printf("exit code: %lld (expected 55)\n",
              static_cast<long long>(run->exec.exit_code));
  std::printf("HDE load-path cycles: %llu, execution cycles: %llu\n",
              static_cast<unsigned long long>(run->hde_cycles.total()),
              static_cast<unsigned long long>(run->exec.cycles));

  // --- And the security property: a different physical device cannot run
  // the same package.
  core::TrustedDevice other_device(/*device_seed=*/0xBAD, key_config);
  other_device.Enroll();
  auto stolen = other_device.ReceiveAndRun(wire);
  std::printf("other device: %s\n",
              stolen.ok() ? "RAN (bug!)" : stolen.status().ToString().c_str());
  return run->exec.exit_code == 55 && !stolen.ok() ? 0 : 1;
}
