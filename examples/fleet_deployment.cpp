// Scenario: fleet deployment with group keys + RSA handshake.
//
// Combines the paper's two scaling stories: (i) Sec. III.1's group keys —
// "programs can be created to run on multiple hardware of their own with a
// single compile step" — and (ii) the future-work RSA key exchange, so the
// vendor never needs a pre-shared secret channel to the fab.
//
// Flow: fab provisions an 8-device group onto one PUF-based key; the fab's
// enrollment station wraps that group key under the vendor's RSA public
// key; the vendor unwraps it, compiles ONCE, and every device in the fleet
// runs the same package — while a 9th device (grey-market clone) rejects it.
#include <cstdio>

#include "core/encryption_policy.h"
#include "core/group_key.h"
#include "core/handshake.h"
#include "core/software_source.h"

int main() {
  using namespace eric;

  crypto::KeyConfig key_config;
  key_config.domain = "acme.fleet.v1";
  Xoshiro256 rng(0xF1EE7D);

  // Vendor publishes an RSA public key.
  auto vendor_handshake = core::HandshakeInitiator::Create(512, rng);
  if (!vendor_handshake.ok()) {
    std::printf("handshake setup failed\n");
    return 1;
  }

  // Fab provisions the group.
  std::vector<uint64_t> fleet_seeds;
  for (uint64_t i = 0; i < 8; ++i) fleet_seeds.push_back(0xFAB000 + i);
  auto group = core::DeviceGroup::Provision(fleet_seeds, key_config);
  if (!group.ok()) {
    std::printf("provisioning failed: %s\n",
                group.status().ToString().c_str());
    return 1;
  }
  std::printf("fab: provisioned %zu devices onto one group key\n",
              group->size());

  // Fab wraps the group key for the vendor (RSA key exchange).
  auto wrapped = crypto::RsaWrapKey(vendor_handshake->public_key(),
                                    group->group_key(), rng);
  if (!wrapped.ok()) {
    std::printf("wrap failed\n");
    return 1;
  }
  auto vendor_key = vendor_handshake->CompleteHandshake(*wrapped);
  if (!vendor_key.ok() || !(*vendor_key == group->group_key())) {
    std::printf("handshake failed\n");
    return 1;
  }
  std::printf("vendor: group key received via %zu-byte RSA blob\n",
              wrapped->size());

  // Vendor compiles ONCE for the whole fleet.
  core::SoftwareSource vendor(*vendor_key, key_config);
  const char* app = R"(
    fn main() {
      var check = 0;
      var i = 1;
      while (i <= 64) { check = (check * 31 + i) % 1000003; i = i + 1; }
      return check;
    }
  )";
  auto built = vendor.CompileAndPackage(
      app, core::EncryptionPolicy::PartialRandom(0.5));
  if (!built.ok()) {
    std::printf("compile failed\n");
    return 1;
  }
  const auto wire = pkg::Serialize(built->packaging.package);
  std::printf("vendor: one %zu-byte package for %zu devices\n\n",
              wire.size(), group->size());

  // Every member runs the same bytes.
  int succeeded = 0;
  int64_t expected = -1;
  for (size_t i = 0; i < group->size(); ++i) {
    auto run = group->RunOnMember(i, wire);
    if (run.ok()) {
      if (expected < 0) expected = run->exec.exit_code;
      if (run->exec.exit_code == expected) ++succeeded;
      std::printf("device %zu: ok (exit %lld)\n", i,
                  static_cast<long long>(run->exec.exit_code));
    } else {
      std::printf("device %zu: REJECTED (%s)\n", i,
                  run.status().ToString().c_str());
    }
  }

  // A clone outside the group.
  core::TrustedDevice clone(0xC107E, key_config);
  clone.Enroll();
  auto pirate_run = clone.ReceiveAndRun(wire);
  std::printf("clone device: %s\n",
              pirate_run.ok() ? "RAN (bug!)" : "rejected");

  std::printf("\nfleet result: %d/%zu members ran one package; clone "
              "locked out\n",
              succeeded, group->size());
  return (succeeded == static_cast<int>(group->size()) && !pirate_run.ok())
             ? 0
             : 1;
}
