// Scenario: fleet deployment through the fleet distribution subsystem.
//
// The paper's scaling story (Sec. III.1 group keys — "programs can be
// created to run on multiple hardware of their own with a single compile
// step") run through the production-shaped stack: a sharded DeviceRegistry
// enrolls the fleet, the PackageCache compiles + seals ONCE for the whole
// group, and the DeploymentEngine pushes the campaign over a lossy channel
// with retries — while a grey-market clone outside the group stays locked
// out and a revoked device is skipped.
//
// The vendor still gets the group key through the future-work RSA
// handshake, so no pre-shared secret channel to the fab is needed.
//
// Act 2 stages the rollout: a broken firmware build (every delivery
// truncated) is stopped by the canary gate before 5/6 of the fleet ever
// sees a byte of it, then the fixed build ships in rolling waves to
// everyone.
//
// Act 3 kills the daemon: a durable registry and campaign journal under
// a state directory are torn down mid-campaign, rebuilt from disk, and
// the resumed campaign finishes the fleet exactly-once — no enrollment
// lost, no device delivered twice.
#include <cstdio>
#include <filesystem>
#include <set>

#include "core/handshake.h"
#include "fleet/campaign_journal.h"
#include "fleet/campaign_scheduler.h"
#include "fleet/deployment_engine.h"

int main() {
  using namespace eric;

  Xoshiro256 rng(0xF1EE7D);

  // Fab side: registry + one product-line group, 8 devices.
  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "acme.fleet.v1";
  fleet::DeviceRegistry registry(registry_config);
  const fleet::GroupId group = registry.CreateGroup("acme-widget-rev-a");
  for (uint64_t i = 0; i < 8; ++i) {
    auto id = registry.Enroll(0xFAB000 + i, group);
    if (!id.ok()) {
      std::printf("enroll failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  auto members = registry.GroupMembers(group);
  if (!members.ok()) return 1;
  std::printf("fab: enrolled %zu devices onto one group key\n",
              members->size());

  // One device falls off a truck; the fab revokes it.
  const fleet::DeviceId revoked = members->back();
  if (!registry.Revoke(revoked).ok()) return 1;
  std::printf("fab: revoked device %llu\n",
              static_cast<unsigned long long>(revoked));

  // Vendor side: RSA handshake delivers the group key.
  auto vendor_handshake = core::HandshakeInitiator::Create(512, rng);
  auto group_key = registry.GroupKey(group);
  if (!vendor_handshake.ok() || !group_key.ok()) {
    std::printf("handshake setup failed\n");
    return 1;
  }
  auto wrapped = crypto::RsaWrapKey(vendor_handshake->public_key(),
                                    *group_key, rng);
  if (!wrapped.ok()) return 1;
  auto vendor_key = vendor_handshake->CompleteHandshake(*wrapped);
  if (!vendor_key.ok() || !(*vendor_key == *group_key)) {
    std::printf("handshake failed\n");
    return 1;
  }
  std::printf("vendor: group key received via %zu-byte RSA blob\n\n",
              wrapped->size());

  // Vendor runs the campaign: the cache compiles + seals once; the engine
  // retries through a channel that randomly corrupts one delivery in three.
  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);

  fleet::CampaignConfig campaign;
  campaign.source = R"(
    fn main() {
      var check = 0;
      var i = 1;
      while (i <= 64) { check = (check * 31 + i) % 1000003; i = i + 1; }
      return check;
    }
  )";
  campaign.policy = core::EncryptionPolicy::PartialRandom(0.5);
  campaign.group = group;
  campaign.workers = 4;
  campaign.max_attempts = 5;
  campaign.channel.fault = net::ChannelFault::kRandomBitFlips;
  campaign.fault_rate = 1.0 / 3.0;

  auto report = engine.Run(campaign);
  if (!report.ok()) {
    std::printf("campaign failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  // Every successful run must agree on the result — a "success" with a
  // divergent exit code would be exactly the misexecution ERIC forbids.
  int64_t expected_exit = -1;
  bool exits_agree = true;
  for (const auto& outcome : report->outcomes) {
    if (outcome.ok) {
      if (expected_exit < 0) expected_exit = outcome.exit_code;
      if (outcome.exit_code != expected_exit) exits_agree = false;
      std::printf("device %llu: ok (exit %lld, %u attempt%s)\n",
                  static_cast<unsigned long long>(outcome.device),
                  static_cast<long long>(outcome.exit_code), outcome.attempts,
                  outcome.attempts == 1 ? "" : "s");
    } else if (outcome.revoked) {
      std::printf("device %llu: skipped (revoked)\n",
                  static_cast<unsigned long long>(outcome.device));
    } else {
      std::printf("device %llu: FAILED (%s)\n",
                  static_cast<unsigned long long>(outcome.device),
                  outcome.last_status.ToString().c_str());
    }
  }
  std::printf("\ncampaign: %llu ok / %llu revoked of %llu targets, "
              "%llu deliveries (%llu retries), sealed once (%llu cache "
              "hits)\n",
              static_cast<unsigned long long>(report->succeeded),
              static_cast<unsigned long long>(report->revoked),
              static_cast<unsigned long long>(report->targets),
              static_cast<unsigned long long>(report->deliveries),
              static_cast<unsigned long long>(report->retries),
              static_cast<unsigned long long>(report->cache_artifact_hits));

  // A clone outside the group receives the same bytes — and rejects them.
  core::TrustedDevice clone(0xC107E, registry.key_config());
  clone.Enroll();
  auto artifact = cache.GetOrBuild(campaign.source, *group_key,
                                   registry.key_config(), campaign.policy);
  if (!artifact.ok()) return 1;
  auto pirate_run = clone.ReceiveAndRun((*artifact)->wire);
  std::printf("clone device: %s\n",
              pirate_run.ok() ? "RAN (bug!)" : "rejected");

  const bool act1_ok = report->succeeded == report->targets - 1 &&
                       report->revoked == 1 && exits_agree && !pirate_run.ok();

  // --- Act 2: canary-gated staged rollout ------------------------------------
  // A new firmware rev goes out to a bigger product line — but the first
  // push rides a channel that truncates every delivery (a botched CDN
  // config, say). The canary cohort burns; the gate stops the campaign
  // before the rest of the fleet is touched. The second push is healthy
  // and rolls out in waves.
  std::printf("\n--- staged rollout with canary gate ---\n");
  const fleet::GroupId line_b = registry.CreateGroup("acme-widget-rev-b");
  for (uint64_t i = 0; i < 24; ++i) {
    auto id = registry.Enroll(0xFAB100 + i, line_b);
    if (!id.ok()) return 1;
  }

  fleet::DeploymentEngine staged_engine(registry, cache);
  fleet::CampaignScheduler scheduler(staged_engine, registry);

  fleet::CampaignConfig rollout;
  rollout.source = campaign.source;
  rollout.policy = campaign.policy;
  rollout.group = line_b;
  rollout.workers = 4;

  fleet::SchedulerConfig staged;
  staged.canary_size = 4;
  staged.canary_failure_threshold = 0.25;
  staged.wave_size = 8;

  // Push 1: the broken pipe. Every delivery is truncated; the HDE
  // rejects each one, the canary failure rate hits 1.0, and the gate
  // aborts the campaign.
  fleet::CampaignConfig broken = rollout;
  broken.channel.fault = net::ChannelFault::kTruncate;
  broken.fault_rate = 1.0;
  auto bad_push = scheduler.Run(broken, staged);
  if (!bad_push.ok()) return 1;
  std::printf("push 1 (broken build): %s — canary failure rate %.2f, "
              "%llu of %llu devices never dispatched\n",
              std::string(fleet::CampaignOutcomeName(bad_push->outcome))
                  .c_str(),
              bad_push->waves.front().failure_rate,
              static_cast<unsigned long long>(bad_push->never_dispatched),
              static_cast<unsigned long long>(bad_push->targets));

  // Push 2: the fixed build rolls out canary-first, then in waves of 8.
  auto good_push = scheduler.Run(rollout, staged);
  if (!good_push.ok()) return 1;
  std::printf("push 2 (fixed build):  %s — %zu waves, %llu/%llu ok\n",
              std::string(fleet::CampaignOutcomeName(good_push->outcome))
                  .c_str(),
              good_push->waves.size(),
              static_cast<unsigned long long>(good_push->succeeded),
              static_cast<unsigned long long>(good_push->targets));

  const bool act2_ok =
      bad_push->outcome == fleet::CampaignOutcome::kAbortedByGate &&
      bad_push->never_dispatched == 20 && bad_push->succeeded == 0 &&
      good_push->outcome == fleet::CampaignOutcome::kCompleted &&
      good_push->succeeded == 24;

  // --- Act 3: the daemon dies mid-campaign; the fleet does not ---------------
  // Registry mutations are write-ahead logged and campaign outcomes
  // checkpointed under a state directory. We enroll a durable fleet,
  // "crash" the daemon (cancel + tear down every in-memory object) after
  // a few deliveries, then bring up a fresh process image from disk and
  // resume.
  std::printf("\n--- durable state: crash mid-campaign, resume ---\n");
  const std::string state_dir =
      (std::filesystem::temp_directory_path() / "eric-example-fleet-state")
          .string();
  std::filesystem::remove_all(state_dir);

  fleet::RegistryConfig durable_config;
  durable_config.key_config.domain = "acme.fleet.v1";
  std::set<fleet::DeviceId> first_run, second_run;
  size_t enrolled_before_crash = 0;
  {
    fleet::DeviceRegistry durable(durable_config);
    if (!durable.OpenStorage(state_dir).ok()) return 1;
    const fleet::GroupId line_c = durable.CreateGroup("acme-widget-rev-c");
    for (uint64_t i = 0; i < 12; ++i) {
      if (!durable.Enroll(0xFAB200 + i, line_c).ok()) return 1;
    }
    enrolled_before_crash = durable.Stats().devices;

    fleet::CampaignJournal journal;
    if (!journal.Open(state_dir).ok()) return 1;
    const auto targets = durable.AllDevices();
    if (!journal.Begin(/*campaign_fingerprint=*/0xACE3, targets).ok()) {
      return 1;
    }

    // Cancel the campaign after 5 durable checkpoints — the in-process
    // stand-in for kill -9 (the real signal path is exercised by
    // tests/fleetd_resume_test.py).
    struct CrashAfter : fleet::CampaignCheckpointSink {
      fleet::CampaignJournal* journal;
      fleet::CampaignControl* control;
      int remaining = 5;
      void OnTargetCheckpoint(
          const fleet::TargetCheckpoint& checkpoint) override {
        journal->OnTargetCheckpoint(checkpoint);
        if (--remaining == 0) control->Cancel();
      }
    };
    fleet::CampaignControl control;
    CrashAfter crash;
    crash.journal = &journal;
    crash.control = &control;
    control.AttachCheckpointSink(&crash);
    fleet::DispatchGovernor governor({}, &control);

    fleet::PackageCache durable_cache;
    fleet::DeploymentEngine durable_engine(durable, durable_cache);
    fleet::CampaignConfig doomed = rollout;
    doomed.group = line_c;
    doomed.workers = 1;
    doomed.governor = &governor;
    auto crashed = durable_engine.Run(doomed);
    if (!crashed.ok()) return 1;
    for (const auto& outcome : crashed->outcomes) {
      if (outcome.ok) first_run.insert(outcome.device);
    }
    std::printf("daemon: delivered %zu of 12, then died (kill -9)\n",
                first_run.size());
  }  // every in-memory object is gone

  // "Restart": recover fleet and campaign from disk, resume.
  bool act3_ok = false;
  {
    fleet::DeviceRegistry recovered(durable_config);
    if (!recovered.OpenStorage(state_dir).ok()) return 1;
    const auto storage = recovered.storage_info();
    fleet::CampaignJournal journal;
    if (!journal.Open(state_dir).ok()) return 1;
    std::printf("restart: %llu devices recovered in %.1f ms; journal shows "
                "%zu targets checkpointed\n",
                static_cast<unsigned long long>(storage.devices_recovered),
                storage.recovery_ms, journal.recovered().completed.size());

    fleet::CampaignControl control;
    control.AttachCheckpointSink(&journal);
    fleet::DispatchGovernor governor({}, &control);
    fleet::PackageCache recovered_cache;
    fleet::DeploymentEngine recovered_engine(recovered, recovered_cache);
    fleet::CampaignConfig resumed = rollout;
    resumed.group = fleet::kNoGroup;
    resumed.devices = journal.recovered().RemainingTargets();
    resumed.governor = &governor;
    auto finish = recovered_engine.Run(resumed);
    if (!finish.ok() || !journal.Complete().ok()) return 1;
    for (const auto& outcome : finish->outcomes) {
      if (outcome.ok) second_run.insert(outcome.device);
    }

    // Exactly-once: the two runs partition the fleet.
    bool disjoint = true;
    for (fleet::DeviceId id : second_run) {
      if (first_run.count(id) > 0) disjoint = false;
    }
    std::printf("resume: delivered the remaining %zu exactly-once (%zu + "
                "%zu = %zu, disjoint: %s)\n",
                second_run.size(), first_run.size(), second_run.size(),
                first_run.size() + second_run.size(),
                disjoint ? "yes" : "NO");
    act3_ok = storage.devices_recovered == enrolled_before_crash &&
              disjoint && first_run.size() + second_run.size() == 12;
  }
  std::filesystem::remove_all(state_dir);

  const bool ok = act1_ok && act2_ok && act3_ok;
  std::printf("\nfleet result: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
