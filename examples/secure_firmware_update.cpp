// Scenario: secure firmware update over a hostile network.
//
// An IoT vendor pushes a firmware image (here: the adpcm codec workload)
// to a fleet of devices. The network is lossy and actively hostile: some
// deliveries arrive clean, some with soft-error bit flips, some patched by
// a man in the middle. The demo shows every clean delivery installs and
// runs, and every damaged/malicious delivery is rejected before a single
// instruction executes — the paper's threat cases (i) and (iv).
#include <cstdio>

#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "net/channel.h"
#include "workloads/workloads.h"

int main() {
  using namespace eric;

  crypto::KeyConfig key_config;
  key_config.domain = "acme.iot.fw";

  // A small fleet: three devices, each with its own silicon => its own
  // key => its own package build.
  constexpr uint64_t kFleetSeeds[3] = {0xF1EE7 + 0, 0xF1EE7 + 1, 0xF1EE7 + 2};
  const auto* firmware = workloads::FindWorkload("adpcm");
  const int64_t expected = firmware->reference();

  int installed = 0, rejected = 0, disasters = 0;
  for (uint64_t seed : kFleetSeeds) {
    core::TrustedDevice device(seed, key_config);
    core::SoftwareSource vendor(device.Enroll(), key_config);
    auto built = vendor.CompileAndPackage(
        firmware->source, core::EncryptionPolicy::PartialRandom(0.6));
    if (!built.ok()) {
      std::printf("vendor build failed: %s\n",
                  built.status().ToString().c_str());
      return 1;
    }
    const auto wire = pkg::Serialize(built->packaging.package);

    // Deliver through assorted network conditions.
    const net::ChannelFault conditions[] = {
        net::ChannelFault::kNone,              // clean
        net::ChannelFault::kRandomBitFlips,    // cosmic ray
        net::ChannelFault::kInstructionPatch,  // MITM injects an instruction
        net::ChannelFault::kNone,              // clean retry
    };
    for (const auto fault : conditions) {
      net::ChannelConfig config;
      config.fault = fault;
      config.seed = seed;
      config.patch_offset = 100;
      net::Channel channel(config);
      auto run = device.ReceiveAndRun(channel.Deliver(wire));
      if (run.ok()) {
        if (run->exec.exit_code == expected) {
          ++installed;
          std::printf("device %llx: %-18s -> installed & verified (exit %lld)\n",
                      static_cast<unsigned long long>(seed),
                      std::string(net::ChannelFaultName(fault)).c_str(),
                      static_cast<long long>(run->exec.exit_code));
        } else {
          ++disasters;
          std::printf("device %llx: %-18s -> RAN CORRUPTED FIRMWARE!\n",
                      static_cast<unsigned long long>(seed),
                      std::string(net::ChannelFaultName(fault)).c_str());
        }
      } else {
        ++rejected;
        std::printf("device %llx: %-18s -> rejected (%s)\n",
                    static_cast<unsigned long long>(seed),
                    std::string(net::ChannelFaultName(fault)).c_str(),
                    std::string(ErrorCodeName(run.status().code())).c_str());
      }
    }
  }
  std::printf("\nfleet summary: %d installed, %d rejected, %d disasters\n",
              installed, rejected, disasters);
  return disasters == 0 && installed == 6 && rejected == 6 ? 0 : 1;
}
