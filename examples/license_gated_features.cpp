// Scenario: license-gated features via partial encryption.
//
// The paper (Sec. III.1): "the programmer can select the features he/she
// wants to run only on licensed hardware within the program". One binary
// ships to everyone; the premium code paths are encrypted for the licensed
// device's key. The licensed device validates and runs everything. For an
// unlicensed analyst, the *package itself* exposes only the map of what is
// protected — the premium instructions read as ciphertext, and the package
// will not execute on their hardware at all.
#include <cstdio>

#include "analysis/static_analysis.h"
#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"

int main() {
  using namespace eric;

  const char* product = R"(
    // free tier: basic statistics. premium tier: the tuned kernel.
    var samples[64];
    fn fill() {
      var s = 9;
      var i = 0;
      while (i < 64) {
        s = (s * 1103515245 + 12345) & 0x7FFFFFFF;
        samples[i] = s % 1000;
        i = i + 1;
      }
      return 0;
    }
    fn free_mean() {
      var sum = 0;
      var i = 0;
      while (i < 64) { sum = sum + samples[i]; i = i + 1; }
      return sum / 64;
    }
    fn premium_weighted_score() {
      // the trade-secret scoring kernel
      var acc = 0;
      var i = 0;
      while (i < 64) {
        acc = acc + samples[i] * samples[63 - i];
        i = i + 1;
      }
      return acc % 100000;
    }
    fn main() {
      fill();
      return free_mean() * 100000 + premium_weighted_score();
    }
  )";

  crypto::KeyConfig key_config;
  key_config.domain = "acme.product.pro";
  core::TrustedDevice licensed(/*device_seed=*/0x11CE, key_config);
  core::SoftwareSource vendor(licensed.Enroll(), key_config);

  // Partial encryption keyed to the licensed device; every other device
  // fails validation, and static analysis of the wire bytes shows the
  // protected fraction is unreadable.
  auto built = vendor.CompileAndPackage(
      product, core::EncryptionPolicy::PartialRandom(0.5, /*seed=*/7));
  if (!built.ok()) {
    std::printf("build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const auto wire = pkg::Serialize(built->packaging.package);

  auto run = licensed.ReceiveAndRun(wire);
  if (!run.ok()) {
    std::printf("licensed device rejected: %s\n",
                run.status().ToString().c_str());
    return 1;
  }
  std::printf("licensed device result: %lld (mean*1e5 + premium score)\n",
              static_cast<long long>(run->exec.exit_code));

  // Unlicensed hardware: the package is a brick.
  core::TrustedDevice pirate(/*device_seed=*/0xD00D, key_config);
  pirate.Enroll();
  auto pirated = pirate.ReceiveAndRun(wire);
  std::printf("unlicensed device:     %s\n",
              pirated.ok() ? "RAN (bug!)"
                           : pirated.status().ToString().c_str());

  // Analyst's view of the wire bytes vs the vendor's plaintext.
  const auto& plain = built->compile.program.image;
  const auto& shipped = built->packaging.package.text;
  const auto plain_report = analysis::SweepDisassemble(
      std::span<const uint8_t>(plain.data(), built->compile.program.text_bytes));
  const auto wire_report = analysis::SweepDisassemble(std::span<const uint8_t>(
      shipped.data(), built->compile.program.text_bytes));
  std::printf("disassembly succeeds:  plaintext %.1f %%, shipped %.1f %%\n",
              100.0 * plain_report.valid_fraction(),
              100.0 * wire_report.valid_fraction());

  return run.ok() && !pirated.ok() ? 0 : 1;
}
