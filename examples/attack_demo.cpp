// Scenario: an attacker's afternoon with a captured package.
//
// Walks the full attacker playbook from the threat model against one
// program shipped four ways (plaintext, full, partial, field-level) and
// prints what each analysis recovers — a narrative version of
// bench_security_attacks.
#include <cstdio>

#include "analysis/attack_harness.h"
#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "isa/disassembler.h"
#include "workloads/workloads.h"

int main() {
  using namespace eric;

  crypto::KeyConfig key_config;
  crypto::Key256 target_key{};
  target_key.fill(0x42);  // the victim device's handshake key
  core::SoftwareSource vendor(target_key, key_config);
  const auto* w = workloads::FindWorkload("crc32");

  struct Shipment {
    const char* label;
    core::EncryptionPolicy policy;
    compiler::CompileOptions options;
  };
  compiler::CompileOptions wide;
  wide.compress = false;
  const Shipment shipments[] = {
      {"no protection", core::EncryptionPolicy::None(), {}},
      {"ERIC full", core::EncryptionPolicy::Full(), {}},
      {"ERIC partial 50%", core::EncryptionPolicy::PartialRandom(0.5), {}},
      {"ERIC field-level", core::EncryptionPolicy::FieldLevelPointers(), wide},
  };

  for (const Shipment& s : shipments) {
    auto built = vendor.CompileAndPackage(w->source, s.policy, s.options);
    if (!built.ok()) {
      std::printf("%s: build failed\n", s.label);
      return 1;
    }
    std::printf("=== shipment: %-18s (package %zu bytes) ===\n", s.label,
                built->packaging.package.WireSize());

    // What the attacker's disassembler shows for the first instructions.
    const auto& text = built->packaging.package.text;
    std::printf("first bytes disassembled:\n%s",
                isa::DisassembleStream(
                    std::span<const uint8_t>(text.data(),
                                             std::min<size_t>(20, text.size())),
                    0x80000000)
                    .c_str());

    const auto report = analysis::RunAttackPlaybook(
        built->compile.program, built->packaging.package);
    std::printf("%s\n", report.Format().c_str());
  }
  std::printf("Protection rises top to bottom on the static metrics; only "
              "the\nunprotected shipment ever executes on the attacker's "
              "board.\n");
  return 0;
}
