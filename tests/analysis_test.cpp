// Attacker-toolbox tests: the static/dynamic analysis metrics must
// separate plaintext from encrypted packages the way the paper claims.
#include <gtest/gtest.h>

#include "analysis/attack_harness.h"
#include "analysis/static_analysis.h"
#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace eric::analysis {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
  return bytes;
}

TEST(EntropyTest, ZerosHaveZeroEntropy) {
  EXPECT_DOUBLE_EQ(ByteEntropy(std::vector<uint8_t>(1024, 0)), 0.0);
}

TEST(EntropyTest, RandomBytesNearEight) {
  EXPECT_GT(ByteEntropy(RandomBytes(65536, 1)), 7.9);
}

TEST(EntropyTest, CompiledCodeWellBelowRandom) {
  auto compiled =
      compiler::Compile(workloads::FindWorkload("dijkstra")->source);
  ASSERT_TRUE(compiled.ok());
  const double code_entropy = ByteEntropy(std::span<const uint8_t>(
      compiled->program.image.data(), compiled->program.text_bytes));
  EXPECT_LT(code_entropy, 7.0);
  EXPECT_GT(code_entropy, 2.0);
}

TEST(SweepTest, PlaintextDecodesCompletely) {
  auto compiled = compiler::Compile(workloads::FindWorkload("qsort")->source);
  ASSERT_TRUE(compiled.ok());
  const auto report = SweepDisassemble(std::span<const uint8_t>(
      compiled->program.image.data(), compiled->program.text_bytes));
  EXPECT_DOUBLE_EQ(report.valid_fraction(), 1.0);
  EXPECT_GT(report.memory_instrs, 0u);
  EXPECT_GT(report.control_flow_instrs, 0u);
}

TEST(SweepTest, RandomBytesDecodePoorly) {
  const auto report = SweepDisassemble(RandomBytes(8192, 2));
  // Much of any byte soup decodes (RISC-V is dense), but far from all.
  EXPECT_LT(report.valid_fraction(), 0.9);
}

TEST(HistogramTest, IdenticalStreamsZeroDistance) {
  auto compiled = compiler::Compile(workloads::FindWorkload("sha")->source);
  ASSERT_TRUE(compiled.ok());
  const std::span<const uint8_t> text(compiled->program.image.data(),
                                      compiled->program.text_bytes);
  EXPECT_DOUBLE_EQ(HistogramDistance(ClassHistogram(text),
                                     ClassHistogram(text)),
                   0.0);
}

TEST(HistogramTest, CiphertextMixDiffers) {
  auto compiled = compiler::Compile(workloads::FindWorkload("sha")->source);
  ASSERT_TRUE(compiled.ok());
  const std::span<const uint8_t> text(compiled->program.image.data(),
                                      compiled->program.text_bytes);
  const auto cipher = RandomBytes(compiled->program.text_bytes, 3);
  EXPECT_GT(HistogramDistance(ClassHistogram(text), ClassHistogram(cipher)),
            0.3);
}

TEST(MemoryTraceTest, SelfAgreementIsOne) {
  auto compiled = compiler::Compile(workloads::FindWorkload("crc32")->source);
  ASSERT_TRUE(compiled.ok());
  const std::span<const uint8_t> text(compiled->program.image.data(),
                                      compiled->program.text_bytes);
  const auto leak = ExtractMemoryAccesses(text);
  EXPECT_GT(leak.accesses.size(), 10u);
  EXPECT_DOUBLE_EQ(MemoryTraceAgreement(leak, leak), 1.0);
}

// --- Full playbook over encryption modes ---------------------------------------

struct PlaybookCase {
  const char* label;
  core::EncryptionPolicy policy;
};

AttackReport RunPlaybook(const core::EncryptionPolicy& policy,
                         const compiler::CompileOptions& options = {}) {
  crypto::KeyConfig config;
  crypto::Key256 device_key{};
  device_key.fill(0x21);
  core::SoftwareSource source(device_key, config);
  auto built = source.CompileAndPackage(
      workloads::FindWorkload("dijkstra")->source, policy, options);
  EXPECT_TRUE(built.ok());
  return RunAttackPlaybook(built->compile.program, built->packaging.package);
}

TEST(PlaybookTest, PlaintextPackageLeaksEverything) {
  const auto report = RunPlaybook(core::EncryptionPolicy::None());
  EXPECT_DOUBLE_EQ(report.disasm_valid_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.memory_trace_agreement, 1.0);
  EXPECT_LT(report.histogram_distance, 0.01);
  // Unencrypted (merely signed) packages run on any hardware — encryption
  // is what binds execution to the device.
  EXPECT_TRUE(report.foreign_device_executed);
}

TEST(PlaybookTest, FullEncryptionDefeatsStaticAnalysis) {
  const auto report = RunPlaybook(core::EncryptionPolicy::Full());
  EXPECT_GT(report.byte_entropy, 7.0);
  EXPECT_LT(report.disasm_valid_fraction, 0.9);
  EXPECT_GT(report.histogram_distance, 0.3);
  EXPECT_LT(report.memory_trace_agreement, 0.1);
  EXPECT_FALSE(report.foreign_device_executed);
}

TEST(PlaybookTest, PartialEncryptionDegradesGracefully) {
  const auto low = RunPlaybook(core::EncryptionPolicy::PartialRandom(0.25));
  const auto high = RunPlaybook(core::EncryptionPolicy::PartialRandom(0.75));
  // More encryption => less recovered.
  EXPECT_GT(low.disasm_valid_fraction, high.disasm_valid_fraction);
  EXPECT_FALSE(low.foreign_device_executed);
  EXPECT_FALSE(high.foreign_device_executed);
}

TEST(PlaybookTest, FieldEncryptionHidesTraceNotStructure) {
  // Field-level rules address 32-bit encodings, so this mode pairs with
  // uncompressed code generation (compressed loads/stores would slip
  // through plaintext — see DESIGN.md).
  compiler::CompileOptions wide;
  wide.compress = false;
  const auto report =
      RunPlaybook(core::EncryptionPolicy::FieldLevelPointers(), wide);
  // The paper's stealth mode: the stream still decodes as valid code...
  EXPECT_GT(report.disasm_valid_fraction, 0.99);
  EXPECT_LT(report.histogram_distance, 0.01);
  // ...but the memory trace (pointer immediates) is destroyed.
  EXPECT_LT(report.memory_trace_agreement, 0.2);
  EXPECT_FALSE(report.foreign_device_executed);
}

TEST(PlaybookTest, ReportFormats) {
  const auto report = RunPlaybook(core::EncryptionPolicy::Full());
  const std::string text = report.Format();
  EXPECT_NE(text.find("byte entropy"), std::string::npos);
  EXPECT_NE(text.find("no"), std::string::npos);
}

}  // namespace
}  // namespace eric::analysis
