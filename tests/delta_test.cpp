// Delta codec property tests: round-trips over seeded mutations at every
// interesting size, and fail-closed behaviour on every corruption the
// wire can produce. ApplyDelta(base, EncodeDelta(base, target)) == target
// is THE property the delta deployment path rests on; corruption must
// yield a Status, never a crash, a partial image, or an outsized
// allocation (the suite runs under ASan+UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/hde.h"
#include "core/software_source.h"
#include "pkg/delta.h"
#include "store/record_io.h"
#include "store/wal.h"
#include "support/rng.h"

namespace eric::pkg {
namespace {

std::vector<uint8_t> RandomBytes(uint64_t seed, size_t size) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> bytes(size);
  for (auto& byte : bytes) byte = static_cast<uint8_t>(rng.Next());
  return bytes;
}

/// Applies `count` seeded random edits — overwrite, insert, or delete, a
/// few bytes each — the mutation model of a small program update.
std::vector<uint8_t> Mutate(std::vector<uint8_t> bytes, uint64_t seed,
                            int count) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < count; ++i) {
    const size_t pos = bytes.empty() ? 0 : rng.Next() % bytes.size();
    const size_t span = 1 + rng.Next() % 7;
    switch (rng.Next() % 3) {
      case 0:  // overwrite
        for (size_t j = 0; j < span && pos + j < bytes.size(); ++j) {
          bytes[pos + j] = static_cast<uint8_t>(rng.Next());
        }
        break;
      case 1: {  // insert
        std::vector<uint8_t> fresh(span);
        for (auto& byte : fresh) byte = static_cast<uint8_t>(rng.Next());
        bytes.insert(bytes.begin() + static_cast<long>(pos), fresh.begin(),
                     fresh.end());
        break;
      }
      default:  // delete
        bytes.erase(bytes.begin() + static_cast<long>(pos),
                    bytes.begin() +
                        static_cast<long>(std::min(pos + span, bytes.size())));
        break;
    }
  }
  return bytes;
}

void ExpectRoundTrip(const std::vector<uint8_t>& base,
                     const std::vector<uint8_t>& target,
                     const char* label) {
  const auto delta = EncodeDelta(base, target);
  auto applied = ApplyDelta(base, delta);
  ASSERT_TRUE(applied.ok()) << label << ": " << applied.status().ToString();
  EXPECT_EQ(*applied, target) << label;
}

// --- Round-trip properties ----------------------------------------------------

TEST(DeltaCodecTest, RoundTripEmptyToEmpty) {
  ExpectRoundTrip({}, {}, "empty -> empty");
}

TEST(DeltaCodecTest, RoundTripEmptyBaseIsInsertOnly) {
  const auto target = RandomBytes(0xA11CE, 777);
  DeltaStats stats;
  const auto delta = EncodeDelta({}, target, &stats);
  EXPECT_EQ(stats.copy_ops, 0u);
  EXPECT_EQ(stats.literal_bytes, target.size());
  auto applied = ApplyDelta({}, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, target);
}

TEST(DeltaCodecTest, RoundTripToEmptyTarget) {
  ExpectRoundTrip(RandomBytes(0xB0B, 512), {}, "512 -> empty");
}

TEST(DeltaCodecTest, RoundTripSingleByte) {
  ExpectRoundTrip({0x5A}, {0xA5}, "1 byte -> 1 byte");
  ExpectRoundTrip({0x5A}, {0x5A}, "1 byte identical");
}

TEST(DeltaCodecTest, IdenticalInputsCollapseToCopies) {
  const auto bytes = RandomBytes(0x1DE17, 64 * 1024);
  DeltaStats stats;
  const auto delta = EncodeDelta(bytes, bytes, &stats);
  EXPECT_EQ(stats.literal_bytes, 0u) << "identical input shipped literals";
  EXPECT_LT(delta.size(), bytes.size() / 100)
      << "identical 64 KiB should cost a handful of frames";
  auto applied = ApplyDelta(bytes, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, bytes);
}

TEST(DeltaCodecTest, RoundTripBlockBoundarySizes) {
  // Sizes that straddle the encoder's block size in every direction,
  // diffed against mutated copies of themselves.
  for (const size_t size :
       {kDeltaBlockSize - 1, kDeltaBlockSize, kDeltaBlockSize + 1,
        2 * kDeltaBlockSize, 2 * kDeltaBlockSize + 1, size_t{1000}}) {
    const auto base = RandomBytes(0xB10C + size, size);
    const auto target = Mutate(base, 0x7A6 + size, 3);
    ExpectRoundTrip(base, target, ("boundary size " +
                                   std::to_string(size)).c_str());
  }
}

TEST(DeltaCodecTest, RoundTripSeededMutationSweep) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const size_t size = 1024 + static_cast<size_t>(seed) * 700;
    const auto base = RandomBytes(0x5EED00 + seed, size);
    const auto target = Mutate(base, 0xCAFE00 + seed, 1 + seed % 6);
    const auto delta = EncodeDelta(base, target);
    auto applied = ApplyDelta(base, delta);
    ASSERT_TRUE(applied.ok()) << "seed " << seed;
    EXPECT_EQ(*applied, target) << "seed " << seed;
    // A handful of small edits must not cost a full re-ship.
    EXPECT_LT(delta.size(), target.size() / 2) << "seed " << seed;
  }
}

TEST(DeltaCodecTest, RoundTripMultiMegabyte) {
  const auto base = RandomBytes(0xB16, 3 * 1024 * 1024);
  auto target = Mutate(base, 0xFEED, 25);
  DeltaStats stats;
  const auto delta = EncodeDelta(base, target, &stats);
  EXPECT_LT(delta.size(), target.size() / 10);
  EXPECT_GT(stats.copy_bytes, stats.literal_bytes);
  auto applied = ApplyDelta(base, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, target);
}

TEST(DeltaCodecTest, RoundTripUnrelatedInputs) {
  // Nothing in common: the delta degenerates to literals (and is bigger
  // than the target — the size-fraction fallback exists for this) but
  // must still reconstruct exactly.
  const auto base = RandomBytes(1, 4096);
  const auto target = RandomBytes(2, 4096);
  DeltaStats stats;
  const auto delta = EncodeDelta(base, target, &stats);
  EXPECT_EQ(stats.copy_bytes, 0u);
  auto applied = ApplyDelta(base, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, target);
}

TEST(DeltaCodecTest, RepeatedContentBaseStaysLinear) {
  // A base of one repeated block floods a single index bucket; the
  // bucket cap must keep encoding fast and the round-trip exact.
  std::vector<uint8_t> base(256 * 1024, 0xAB);
  auto target = base;
  target[1000] = 0xCD;
  target.insert(target.begin() + 70000, {1, 2, 3, 4, 5});
  ExpectRoundTrip(base, target, "repeated-content base");
}

// --- Fail-closed on corruption ------------------------------------------------

TEST(DeltaCorruptionTest, TruncationAtEveryBoundaryFailsClosed) {
  const auto base = RandomBytes(0x7E57, 2048);
  const auto target = Mutate(base, 0x7E58, 4);
  const auto delta = EncodeDelta(base, target);
  // Every strict prefix must be rejected (sampled stride keeps it fast;
  // the frame boundaries all fall inside some sample window).
  for (size_t keep = 0; keep < delta.size();
       keep += 1 + delta.size() / 97) {
    auto truncated = delta;
    truncated.resize(keep);
    EXPECT_FALSE(ApplyDelta(base, truncated).ok()) << "kept " << keep;
  }
}

TEST(DeltaCorruptionTest, BitFlipSweepNeverYieldsWrongBytes) {
  const auto base = RandomBytes(0xF11, 1024);
  const auto target = Mutate(base, 0xF12, 3);
  const auto delta = EncodeDelta(base, target);
  Xoshiro256 rng(0xB17F11);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = delta;
    const size_t byte = rng.Next() % corrupted.size();
    corrupted[byte] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
    auto applied = ApplyDelta(base, corrupted);
    // Either rejected, or — only possible if the flip missed every
    // checked region, which the format does not allow — byte-exact.
    if (applied.ok()) {
      EXPECT_EQ(*applied, target) << "flip at " << byte
                                  << " produced wrong bytes";
    }
  }
}

TEST(DeltaCorruptionTest, WrongBaseRejectedBeforeAnyOpRuns) {
  const auto v1 = RandomBytes(0xAAA, 4096);
  const auto v2 = Mutate(v1, 0xBBB, 4);
  const auto v3 = Mutate(v2, 0xCCC, 4);
  const auto delta_12 = EncodeDelta(v1, v2);
  // Applying the v1->v2 patch to v2 (the crash-resume wrong-base case)
  // or to an unrelated image must fail on the base CRC, not mid-ops.
  EXPECT_EQ(ApplyDelta(v2, delta_12).status().code(),
            ErrorCode::kCorruptPackage);
  EXPECT_EQ(ApplyDelta(v3, delta_12).status().code(),
            ErrorCode::kCorruptPackage);
  EXPECT_EQ(ApplyDelta({}, delta_12).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(DeltaCorruptionTest, BadMagicAndShortBuffersRejected) {
  const auto base = RandomBytes(0xD06, 64);
  EXPECT_FALSE(ApplyDelta(base, {}).ok());
  const std::vector<uint8_t> junk = {'E', 'R', 'I', 'C'};
  EXPECT_FALSE(ApplyDelta(base, junk).ok());
  auto delta = EncodeDelta(base, base);
  delta[0] ^= 0xFF;
  EXPECT_FALSE(ApplyDelta(base, delta).ok());
  EXPECT_FALSE(LooksLikeDelta(junk));
  EXPECT_TRUE(LooksLikeDelta(EncodeDelta(base, base)));
}

/// Handcrafts a delta from parts, re-framing each op with a valid CRC so
/// the corruption under test is the *semantic* one, not the checksum.
class DeltaForge {
 public:
  DeltaForge(std::span<const uint8_t> base, uint64_t target_len,
             uint32_t target_crc) {
    const uint8_t magic[8] = {'E', 'R', 'I', 'C', 'D', 'L', 'T', '1'};
    bytes_.reserve(64);
    bytes_.insert(bytes_.end(), magic, magic + 8);
    uint8_t header[24];
    Le64(base.size(), header);
    Le32(Crc(base), header + 8);
    Le64(target_len, header + 12);
    Le32(target_crc, header + 20);
    bytes_.insert(bytes_.end(), header, header + 24);
    uint8_t crc[4];
    Le32(Crc({header, 24}), crc);
    bytes_.insert(bytes_.end(), crc, crc + 4);
  }

  DeltaForge& Op(uint8_t opcode, std::span<const uint8_t> payload) {
    uint8_t prefix[5];
    prefix[0] = opcode;
    Le32(static_cast<uint32_t>(payload.size()), prefix + 1);
    bytes_.insert(bytes_.end(), prefix, prefix + 5);
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
    std::vector<uint8_t> framed = {opcode};
    framed.insert(framed.end(), payload.begin(), payload.end());
    uint8_t crc[4];
    Le32(Crc(framed), crc);
    bytes_.insert(bytes_.end(), crc, crc + 4);
    return *this;
  }

  DeltaForge& Copy(uint64_t offset, uint32_t length) {
    uint8_t payload[12];
    Le64(offset, payload);
    Le32(length, payload + 8);
    return Op(1, payload);
  }

  DeltaForge& End() { return Op(3, {}); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  static void Le32(uint32_t v, uint8_t* out) { store::StoreLe32(v, out); }
  static void Le64(uint64_t v, uint8_t* out) { store::StoreLe64(v, out); }
  static uint32_t Crc(std::span<const uint8_t> data) {
    return store::Crc32(data);
  }

  std::vector<uint8_t> bytes_;
};

TEST(DeltaCorruptionTest, OversizedCopyOpRejected) {
  const auto base = RandomBytes(0x0B5, 256);
  // Copy op reaching past the base end, and one whose offset overflows.
  {
    DeltaForge forge(base, 512, 0);
    forge.Copy(200, 100).End();
    EXPECT_EQ(ApplyDelta(base, forge.bytes()).status().code(),
              ErrorCode::kCorruptPackage);
  }
  {
    DeltaForge forge(base, 512, 0);
    forge.Copy(~0ull - 4, 64).End();
    EXPECT_EQ(ApplyDelta(base, forge.bytes()).status().code(),
              ErrorCode::kCorruptPackage);
  }
}

TEST(DeltaCorruptionTest, OpsOverrunningDeclaredTargetRejected) {
  const auto base = RandomBytes(0x0B6, 256);
  DeltaForge forge(base, 100, 0);  // declares a 100-byte target...
  forge.Copy(0, 256).End();        // ...but copies 256
  EXPECT_EQ(ApplyDelta(base, forge.bytes()).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(DeltaCorruptionTest, OversizedDeclaredTargetRejectedWithoutAllocating) {
  const auto base = RandomBytes(0x0B7, 64);
  // A forged header declaring a target over the hard cap must be
  // refused up front — under ASan this doubles as an OOM guard.
  DeltaForge forge(base, kDeltaMaxTargetBytes + 1, 0);
  forge.End();
  EXPECT_EQ(ApplyDelta(base, forge.bytes()).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(DeltaCorruptionTest, UnknownOpcodeAndMalformedOpsRejected) {
  const auto base = RandomBytes(0x0B8, 64);
  {
    DeltaForge forge(base, 0, store::Crc32({}));
    forge.Op(9, {}).End();  // unknown opcode
    EXPECT_FALSE(ApplyDelta(base, forge.bytes()).ok());
  }
  {
    const uint8_t short_copy[4] = {1, 2, 3, 4};
    DeltaForge forge(base, 0, store::Crc32({}));
    forge.Op(1, short_copy).End();  // copy payload must be 12 bytes
    EXPECT_FALSE(ApplyDelta(base, forge.bytes()).ok());
  }
  {
    const uint8_t stray = 0;
    DeltaForge forge(base, 0, store::Crc32({}));
    forge.Op(3, {&stray, 1});  // end op carrying a payload
    EXPECT_FALSE(ApplyDelta(base, forge.bytes()).ok());
  }
}

TEST(DeltaCorruptionTest, TrailingBytesAfterEndOpRejected) {
  const auto base = RandomBytes(0x0B9, 128);
  const auto target = Mutate(base, 0x0BA, 2);
  auto delta = EncodeDelta(base, target);
  // A faithful duplicate-delivery (replay) concatenation: the second
  // copy trails the first end op and must fail closed.
  auto doubled = delta;
  doubled.insert(doubled.end(), delta.begin(), delta.end());
  EXPECT_EQ(ApplyDelta(base, doubled).status().code(),
            ErrorCode::kCorruptPackage);
  // So must a single stray byte.
  delta.push_back(0x00);
  EXPECT_FALSE(ApplyDelta(base, delta).ok());
}

TEST(DeltaCorruptionTest, MissingEndOpRejected) {
  const auto base = RandomBytes(0x0BB, 128);
  const auto target = Mutate(base, 0x0BC, 2);
  const auto delta = EncodeDelta(base, target);
  // Chop exactly the end frame (9 bytes) off: every remaining frame is
  // intact, so only the end-op check can catch it.
  std::vector<uint8_t> chopped(delta.begin(), delta.end() - 9);
  EXPECT_EQ(ApplyDelta(base, chopped).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(DeltaCorruptionTest, ReconstructionCrcBackstopsTamperedLiterals) {
  // Forge a structurally perfect delta whose output simply is not the
  // declared target: the final target CRC must catch it.
  const auto base = RandomBytes(0x0BD, 64);
  const std::vector<uint8_t> wrong(32, 0xEE);
  DeltaForge forge(base, wrong.size(), 0xDEADBEEF);  // CRC of nothing real
  forge.Op(2, wrong).End();
  EXPECT_EQ(ApplyDelta(base, forge.bytes()).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(DeltaCorruptionTest, CrossIsaBaseFailsClosed) {
  // Seal the same two releases for both ISAs under one deployment key —
  // exactly what the mixed-fleet package cache produces — then apply the
  // RV64GC v1->v2 patch against the RV32I v1 wire. The base images differ
  // (different encodings, different flags byte), so the base CRC must
  // reject with kCorruptPackage: never a crash, never a silently wrong
  // image handed to the device. This is the regression test behind the
  // engine's delta-base-never-crosses-ISAs rule.
  crypto::KeyConfig config;
  core::HardwareDecryptionEngine hde(0x15A, config);
  const crypto::Key256 key = hde.EnrollAndShareKey();
  core::SoftwareSource source(key, config);
  const auto build = [&](const char* program, isa::IsaId isa) {
    compiler::CompileOptions options;
    options.isa = isa;
    auto built = source.CompileAndPackage(
        program, core::EncryptionPolicy::Full(), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return Serialize(built->packaging.package);
  };
  const char* v1 = "fn main() { return 1; }";
  const char* v2 = "fn main() { return 2; }";
  const auto v1_rv64 = build(v1, isa::IsaId::kRv64Gc);
  const auto v2_rv64 = build(v2, isa::IsaId::kRv64Gc);
  const auto v1_rv32 = build(v1, isa::IsaId::kRv32I);
  ASSERT_NE(v1_rv64, v1_rv32);

  const auto delta = EncodeDelta(v1_rv64, v2_rv64);
  auto cross = ApplyDelta(v1_rv32, delta);
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.status().code(), ErrorCode::kCorruptPackage);
  // The matching base still round-trips.
  auto applied = ApplyDelta(v1_rv64, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, v2_rv64);
}

}  // namespace
}  // namespace eric::pkg
