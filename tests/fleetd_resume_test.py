#!/usr/bin/env python3
"""End-to-end crash-resume tests for eric_fleetd's durable state.

Drives the REAL binary through two acceptance scenarios:

Plain campaign:
  1. start a campaign with --state-dir over a stretched channel
  2. kill -9 the daemon once at least one target outcome is durably
     checkpointed (counted by parsing campaign.wal's record frames) and
     at least one target remains
  3. restart with --resume and assert the campaign completes with no
     device delivered twice and no enrolled device lost

Key-epoch rotation:
  1. enroll a durable fleet and complete a plain campaign
  2. start --rotate-epoch over a stretched channel, kill -9 mid-rotation
  3. restart with --resume --rotate-epoch and assert the rotation
     finishes exactly once at the journaled epoch, every remaining
     target sealed under the NEW epoch (the members' HDEs were rotated
     by WAL replay, so a stale-epoch package could not have succeeded)
  4. a follow-up rotation advances exactly one epoch further, proving
     the journal considered the first rotation over

Delta campaign:
  1. deploy release v1 to a durable fleet (manifests land at v1)
  2. start the v2 --delta campaign, kill -9 mid-campaign
  3. restart with --resume --delta and assert exactly-once completion
     and that EVERY device's manifest reads v2 (manifest_current in the
     JSON). Device base images live in durable slot manifests, so the
     restarted daemon patches remaining targets with REAL deltas: at
     most one device (the one in the kill window whose manifest had
     already advanced to v2) ships a full package instead, and at most
     one rolls through the delta fallback — never the whole fleet.

Listen-mode campaign:
  1. start a --listen campaign: the daemon serves dispatches over real
     loopback sockets to an in-process simulated device fleet, one
     framed connection per device
  2. kill -9 mid-campaign (sockets die with the process; no shutdown
     handshake ran) and restart with --resume --listen
  3. the restarted daemon re-binds, the sim fleet re-handshakes, and
     the campaign completes the remaining targets exactly once — the
     durable checkpoint story is transport-independent

Chaos soak:
  1. start the seeded short-profile --soak (enroll/revoke churn,
     concurrent rotation + delta campaigns, channel faults, agent
     crash-mid-apply), kill -9 once every device has a durable slot
     manifest and the harness is mid-storm
  2. rerun the same soak over the surviving state dir and assert it
     converges: exit 0, "soak: PASS", zero invariant violations in the
     JSON report
  3. parse every agent slot manifest (magic, device id, zlib CRC32
     framing, record layout) and assert no device is torn (image bytes
     match their recorded CRC) or mid-apply (phase idle) — the A/B
     agent's crash-safety, proven from outside the process

Watchdog pause:
  1. start a campaign whose channel corrupts every delivery, with an
     --slo failure-ratio watchdog (pause policy) evaluating every 100ms
  2. wait for the watchdog record (type 6) to land durably in
     campaign.wal — proof the breach paused a LIVE campaign — then
     kill -9 the stalled daemon
  3. restart with --resume and assert it refuses (exit 3) with a
     watchdog report naming the breached SLO, without dispatching a
     single target
  4. restart with --resume --ack-watchdog over a clean channel and
     assert the campaign completes the remaining targets exactly once

Telemetry export:
  1. run the plain-campaign crash scenario with --metrics-out: every
     snapshot observed while the daemon runs must be complete, schema-
     tagged JSON (the write is atomic, so a poller never sees a torn
     document), including the one that survives the kill -9
  2. resume with --metrics-out to a fresh file and assert the final
     snapshot's counters agree exactly with the resumed run's report
     (deliveries, retries, successes — the exactly-once arithmetic,
     read back from the metrics registry instead of the report), its
     latency histograms cover delivery/seal/WAL stages with ordered
     percentiles, and the report's embedded "telemetry" section agrees

Mixed-ISA campaign:
  1. enroll a heterogeneous fleet (--rv32-every: every K-th device is
     RV32I silicon), start a campaign, kill -9 mid-flight
  2. restart with --resume and assert exactly-once completion with the
     per-ISA arithmetic intact: the resumed run's by_isa slices
     partition its targets, every slice fully succeeds (a success is
     only possible with an own-ISA image — the HDE refuses foreign
     encodings), each active ISA compiled exactly once, and every
     device's durable manifest advanced to the campaign version

Exactly-once is checked from the resume run's JSON: previously
checkpointed targets plus this run's dispatched targets must partition
the target set, and the resumed run must only have dispatched the
complement (deliveries == remaining targets).

All waiting is done by polling observable state (journal record counts,
process liveness) — no fixed sleeps around the SIGKILL window — and the
work dir is cleaned up even when the daemon dies early or outlives an
attempt.

Usage: fleetd_resume_test.py /path/to/eric_fleetd
"""

import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
import time
import zlib

DEVICES = 16
GROUPS = 2
# Stretch each delivery so the kill window is wide even on a fast box.
LATENCY_US = 50000
POLL_S = 0.02
DEADLINE_S = 120

WAL_HEADER_SIZE = 8 + 8     # "ERICWAL1" magic + u64 fingerprint
# Outcome record types: 2 = pre-delta {device, kind, attempts}, 5 = with
# the delivery form appended. Both count as a durable checkpoint.
OUTCOME_RECORD_TYPES = (2, 5)
# Health-watchdog stop record (breach paused/aborted the campaign).
WATCHDOG_RECORD_TYPE = 6

TINY_PROGRAM = """
fn main() {
  var sum = 0;
  var i = 1;
  while (i <= 10) { sum = sum + i * i; i = i + 1; }
  return sum;
}
"""


def fail(message):
    print("FAIL: " + message)
    sys.exit(1)


def count_records(journal_path, types):
    """Counts durably framed records of the given types in a campaign.wal.

    Parses the WAL frame layout (u32 payload_len | u8 type | u32 crc |
    payload) rather than assuming record sizes, so the count stays right
    across record-format changes (e.g. rotation begin records). A torn
    tail or a file that is still growing simply ends the scan."""
    try:
        with open(journal_path, "rb") as f:
            data = f.read()
    except OSError:
        return 0
    matches = 0
    pos = WAL_HEADER_SIZE
    while pos + 9 <= len(data):
        (length,) = struct.unpack_from("<I", data, pos)
        rec_type = data[pos + 4]
        end = pos + 9 + length
        if end > len(data):
            break  # torn / still-being-written tail
        if rec_type in types:
            matches += 1
        pos = end
    return matches


def count_outcome_records(journal_path):
    return count_records(journal_path, OUTCOME_RECORD_TYPES)


def validate_snapshot(path, label, require=False):
    """Loads a metrics snapshot, failing the test on a torn or
    schema-less document. A missing file is only an error under
    `require` (the exporter may not have ticked yet)."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError:
        if require:
            fail("%s: no metrics snapshot at %s" % (label, path))
        return None
    try:
        snap = json.loads(text)
    except ValueError:
        fail("%s: torn/unparseable metrics snapshot (atomic write "
             "violated): %r" % (label, text[:120]))
    if snap.get("schema") != "eric.metrics.v1":
        fail("%s: snapshot schema is %r" % (label, snap.get("schema")))
    return snap


def run_until_killed(command, journal, min_outcomes, max_outcomes,
                     metrics=None):
    """Starts `command`, kill -9s it once the journal holds at least
    `min_outcomes` (and at most `max_outcomes`) outcome records.

    Returns the outcome count at the kill, or None when the process
    finished before the window was hit (caller retries). The process is
    always reaped — including on unexpected exceptions — so temp-dir
    cleanup never races a live daemon. With `metrics`, every poll also
    reads that snapshot path: a live exporter must never be caught
    publishing a torn document."""
    proc = subprocess.Popen(command, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + DEADLINE_S
        # The journal may still hold a *previous* completed campaign's
        # records until this run's Begin truncates it — ignore counts
        # until we have seen the file at or below the window once.
        seen_reset = False
        while time.time() < deadline:
            if proc.poll() is not None:
                return None  # finished before we killed it
            if metrics is not None:
                validate_snapshot(metrics, "mid-campaign snapshot")
            outcomes = count_outcome_records(journal)
            if outcomes > max_outcomes:
                if seen_reset:
                    return None  # window missed; let it finish and retry
                time.sleep(POLL_S)
                continue
            seen_reset = True
            if outcomes >= min_outcomes:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                return outcomes
            time.sleep(POLL_S)
        fail("daemon made no checkpoint progress within %ds" % DEADLINE_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def run_json(command, json_path, label):
    result = subprocess.run(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            timeout=DEADLINE_S)
    if result.returncode != 0:
        fail("%s exited %d:\n%s" % (label, result.returncode, result.stdout))
    with open(json_path) as f:
        return json.load(f)


def check_resume_report(report, targets, label, max_deliveries_per_target=1):
    """The exactly-once arithmetic shared by every scenario.

    A delta resume legitimately performs up to two deliveries per target
    (the failed-closed patch plus the full-package fallback), so the
    delivery bound is per-scenario; the target arithmetic is not."""
    if not report["resumed"]:
        fail("%s did not report resumed=true" % label)
    if report["fleet_devices"] != DEVICES:
        fail("%s: recovered fleet has %d devices, enrolled %d" %
             (label, report["fleet_devices"], DEVICES))
    if report["original_targets"] != targets:
        fail("%s: journal lost targets: %d of %d" %
             (label, report["original_targets"], targets))
    prior = report["previously_completed"]
    if prior < 1:
        fail("%s: kill landed before any checkpoint (prior=%d)" %
             (label, prior))
    if prior + report["devices"] != targets:
        fail("%s: checkpointed %d + resumed %d != targets %d" %
             (label, prior, report["devices"], targets))
    if not (report["devices"] <= report["deliveries"]
            <= max_deliveries_per_target * report["devices"]):
        fail("%s: resumed run delivered %d times for %d targets" %
             (label, report["deliveries"], report["devices"]))
    if report["succeeded"] != report["devices"]:
        fail("%s: resumed run: %d of %d targets succeeded" %
             (label, report["succeeded"], report["devices"]))
    return prior


def plain_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    json_out = os.path.join(workdir, "resume-%d.json" % attempt)

    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--source", source, "--state-dir", state_dir,
    ]
    killed_at = run_until_killed(
        base + ["--workers", "1", "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=2, max_outcomes=DEVICES - 2)
    if killed_at is None:
        return None  # campaign outran the kill; caller retries

    report = run_json(base + ["--workers", "2", "--resume",
                              "--json", json_out],
                      json_out, "resume run")
    prior = check_resume_report(report, DEVICES, "resume run")

    # And the journal agrees the campaign is over: a second --resume finds
    # nothing to continue (it starts a fresh campaign instead of replaying
    # or double-delivering the finished one).
    idle_report = run_json(base + ["--resume", "--json", json_out + ".idle"],
                           json_out + ".idle", "post-completion resume")
    if idle_report["resumed"] or idle_report["previously_completed"] != 0:
        fail("completed campaign still resumable: %s" % idle_report)
    return prior


def listen_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "listen-state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    json_out = os.path.join(workdir, "listen-resume-%d.json" % attempt)

    # --listen 0 binds an ephemeral port each run, so the restarted
    # daemon never races the killed one's lingering socket. The
    # transport is not part of the campaign fingerprint (it shapes the
    # delivery path, never the bytes), so the resume matches.
    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--source", source, "--state-dir", state_dir, "--listen", "0",
    ]
    killed_at = run_until_killed(
        base + ["--workers", "1", "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=2, max_outcomes=DEVICES - 2)
    if killed_at is None:
        return None  # campaign outran the kill; caller retries

    report = run_json(base + ["--workers", "2", "--resume",
                              "--json", json_out],
                      json_out, "listen resume")
    return check_resume_report(report, DEVICES, "listen resume")


def metrics_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "metrics-state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    live_metrics = os.path.join(workdir, "metrics-live-%d.json" % attempt)
    final_metrics = os.path.join(workdir, "metrics-final-%d.json" % attempt)
    json_out = os.path.join(workdir, "metrics-resume-%d.json" % attempt)

    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--source", source, "--state-dir", state_dir,
    ]
    telemetry = ["--metrics-out", live_metrics, "--metrics-interval", "0.05"]
    killed_at = run_until_killed(
        base + telemetry + ["--workers", "1",
                            "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=2, max_outcomes=DEVICES - 2,
        metrics=live_metrics)
    if killed_at is None:
        return None  # campaign outran the kill; caller retries

    # The snapshot that survives the kill -9 is a complete document (the
    # exporter had ticked by the time the first outcome checkpointed).
    validate_snapshot(live_metrics, "post-kill snapshot", require=True)

    report = run_json(base + ["--workers", "2", "--resume",
                              "--metrics-out", final_metrics,
                              "--metrics-interval", "0.05",
                              "--json", json_out],
                      json_out, "metrics resume")
    prior = check_resume_report(report, DEVICES, "metrics resume")

    # The final snapshot (the exporter's shutdown flush) must agree with
    # the resumed run's report: the registry saw exactly the deliveries
    # the exactly-once machinery admitted, no more.
    final = validate_snapshot(final_metrics, "final snapshot", require=True)
    expected_counters = {
        "fleet_campaigns": 1,
        "fleet_deliveries": report["deliveries"],
        "fleet_retries": report["retries"],
        "fleet_targets_succeeded": report["succeeded"],
        "fleet_targets_failed": report["failed"],
    }
    for name, want in expected_counters.items():
        got = final["counters"].get(name)
        if got != want:
            fail("final snapshot %s=%s, report says %s" % (name, got, want))

    # Latency histograms cover the delivery, seal, and WAL stages, with
    # coherent percentiles and exact bucket accounting.
    for name in ("fleet_delivery_us", "fleet_seal_us",
                 "store_wal_append_us", "store_wal_fsync_us"):
        hist = final["histograms"].get(name)
        if not hist or hist["count"] < 1:
            fail("final snapshot lacks samples in histogram %s" % name)
        if not (0 <= hist["p50_us"] <= hist["p95_us"] <= hist["p99_us"]
                <= hist["max_us"] + 1e-9):
            fail("%s percentiles out of order: %s" % (name, hist))
        if sum(count for _, count in hist["buckets"]) != hist["count"]:
            fail("%s bucket counts do not sum to count: %s" % (name, hist))
    if final["histograms"]["fleet_delivery_us"]["count"] != \
            report["deliveries"]:
        fail("fleet_delivery_us saw %d samples, report delivered %d times" %
             (final["histograms"]["fleet_delivery_us"]["count"],
              report["deliveries"]))

    # The campaign report embeds the same registry under "telemetry".
    telemetry_section = report.get("telemetry")
    if not telemetry_section or \
            telemetry_section.get("schema") != "eric.metrics.v1":
        fail("campaign JSON carries no telemetry section: %r"
             % type(telemetry_section))
    if telemetry_section["counters"]["fleet_deliveries"] != \
            report["deliveries"]:
        fail("embedded telemetry disagrees with the report: %s != %s" %
             (telemetry_section["counters"]["fleet_deliveries"],
              report["deliveries"]))
    return prior


# Every third device is RV32I silicon: 16 devices -> 5 rv32, 11 rv64,
# spread across both groups so each group seals per-ISA artifacts.
RV32_EVERY = 3


def mixed_isa_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "isa-state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    json_out = os.path.join(workdir, "isa-resume-%d.json" % attempt)

    # --rv32-every shapes the initial enrollment only; on the resume it
    # is ignored (the recovered registry already knows each device's
    # silicon), so repeating it in `base` is deliberate — the same
    # command line must work on both sides of the crash.
    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--rv32-every", str(RV32_EVERY),
        "--source", source, "--state-dir", state_dir,
    ]
    killed_at = run_until_killed(
        base + ["--workers", "1", "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=2, max_outcomes=DEVICES - 2)
    if killed_at is None:
        return None  # campaign outran the kill; caller retries

    report = run_json(base + ["--workers", "2", "--resume",
                              "--json", json_out],
                      json_out, "mixed-isa resume")
    prior = check_resume_report(report, DEVICES, "mixed-isa resume")

    # The per-ISA arithmetic of the resumed run. The kill window decides
    # which ISAs remain, so slices may be missing — but the ones present
    # must partition the resumed targets and fully succeed. A success is
    # only possible with an own-ISA image (the recovered registry
    # replayed each device's ISA from the WAL, and the HDE fails closed
    # on foreign encodings), so this is the heterogeneity proof.
    by_isa = report.get("by_isa")
    if not by_isa:
        fail("mixed-isa resume JSON carries no by_isa section")
    if not set(by_isa) <= {"rv64gc", "rv32i"}:
        fail("by_isa names unknown ISAs: %s" % sorted(by_isa))
    if sum(s["targets"] for s in by_isa.values()) != report["devices"]:
        fail("by_isa targets do not partition the resumed targets: %s"
             % by_isa)
    if sum(s["succeeded"] for s in by_isa.values()) != report["succeeded"]:
        fail("by_isa successes disagree with the report: %s" % by_isa)
    for name, slice_stats in sorted(by_isa.items()):
        if slice_stats["succeeded"] != slice_stats["targets"]:
            fail("%s: %d of %d targets succeeded on the resumed run" %
                 (name, slice_stats["succeeded"], slice_stats["targets"]))
        if slice_stats["compile_builds"] != 1:
            fail("%s: resumed run compiled %d times, want exactly once" %
                 (name, slice_stats["compile_builds"]))
    # Every device's durable manifest reads the campaign version —
    # recorded under its own ISA (the store tests prove the field; here
    # the count proves no device was skipped or double-advanced).
    if report["manifest_current"] != DEVICES:
        fail("mixed-isa resume left %d of %d manifests current" %
             (report["manifest_current"], DEVICES))
    return prior


def rotation_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "rot-state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    members = DEVICES // GROUPS  # rotation targets group 1 only

    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--source", source, "--state-dir", state_dir,
    ]
    # Enroll the durable fleet with a completed plain campaign.
    enroll_json = os.path.join(workdir, "rot-enroll-%d.json" % attempt)
    run_json(base + ["--workers", "4", "--json", enroll_json],
             enroll_json, "rotation fleet enrollment")

    # Rotate group 1 over the stretched channel, kill -9 mid-rotation.
    killed_at = run_until_killed(
        base + ["--rotate-epoch", "1", "--workers", "1",
                "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=1, max_outcomes=members - 2)
    if killed_at is None:
        return None

    json_out = os.path.join(workdir, "rot-resume-%d.json" % attempt)
    report = run_json(base + ["--rotate-epoch", "1", "--workers", "2",
                              "--resume", "--json", json_out],
                      json_out, "rotation resume")
    prior = check_resume_report(report, members, "rotation resume")
    rotation = report.get("rotation")
    if not rotation:
        fail("rotation resume JSON carries no rotation report")
    # The resume finished the SAME rotation: epoch 0 -> 1, applied
    # idempotently (the bump was already durable when the first outcome
    # checkpointed, so the resume must not have re-bumped).
    if rotation["new_epoch"] != 1:
        fail("rotation resumed to epoch %d, journaled target was 1" %
             rotation["new_epoch"])
    if rotation["bumped"]:
        fail("resume re-bumped an epoch that was already durable")
    # Every resumed target succeeded (checked above) — and a success is
    # only possible with a new-epoch package: WAL replay rotated the
    # member HDEs to epoch 1 before the resume sealed a single byte, and
    # a rotated HDE rejects stale-epoch packages by construction.

    # A fresh rotation now advances exactly one epoch further — the
    # journal considers the interrupted rotation complete.
    next_json = os.path.join(workdir, "rot-next-%d.json" % attempt)
    next_report = run_json(base + ["--rotate-epoch", "1",
                                   "--json", next_json],
                           next_json, "follow-up rotation")
    next_rotation = next_report["rotation"]
    if next_report["resumed"] or next_rotation["old_epoch"] != 1 or \
            next_rotation["new_epoch"] != 2:
        fail("follow-up rotation went %d -> %d (resumed=%s); completed "
             "rotation still resumable?" %
             (next_rotation["old_epoch"], next_rotation["new_epoch"],
              next_report["resumed"]))
    return prior


def make_release(rounds):
    """A multi-KB release whose versions differ by one loop bound — big
    enough that patches beat full packages (the Python mirror of
    workloads::MakeSyntheticRelease)."""
    src = ""
    for f in range(10):
        src += ("fn stage{f}(x) {{\n  var acc = x + {a};\n  var i = 0;\n"
                "  while (i < {b}) {{\n"
                "    acc = (acc * {c} + i) & 0xFFFFFF;\n"
                "    i = i + 1;\n  }}\n  return acc;\n}}\n").format(
                    f=f, a=1000 + f * 37, b=8 + f, c=29 + 2 * f)
    src += "fn main() {\n  var r = 7;\n  var round = 0;\n"
    src += "  while (round < %d) {\n" % rounds
    for f in range(10):
        src += "    r = stage%d(r);\n" % f
    src += "    round = round + 1;\n  }\n  return r % 100000;\n}\n"
    return src


def delta_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "delta-state-%d" % attempt)
    v1 = os.path.join(workdir, "v1.eric")
    v2 = os.path.join(workdir, "v2.eric")
    with open(v1, "w") as f:
        f.write(make_release(3))
    with open(v2, "w") as f:
        f.write(make_release(5))
    journal = os.path.join(state_dir, "campaign.wal")

    base = [fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
            "--state-dir", state_dir]
    # Release v1 lands everywhere; every manifest durably reads v1.
    v1_json = os.path.join(workdir, "delta-v1-%d.json" % attempt)
    v1_report = run_json(base + ["--source", v1, "--workers", "4",
                                 "--json", v1_json],
                         v1_json, "delta v1 deployment")
    if v1_report["manifest_current"] != DEVICES:
        fail("v1 deployment left %d of %d manifests at v1" %
             (v1_report["manifest_current"], DEVICES))

    # The v2 delta campaign, killed mid-flight.
    delta_flags = ["--source", v2, "--delta", "--base-source", v1]
    killed_at = run_until_killed(
        base + delta_flags + ["--workers", "1",
                              "--latency-us", str(LATENCY_US)],
        journal, min_outcomes=2, max_outcomes=DEVICES - 2)
    if killed_at is None:
        return None

    json_out = os.path.join(workdir, "delta-resume-%d.json" % attempt)
    report = run_json(base + delta_flags + ["--workers", "2", "--resume",
                                            "--json", json_out],
                      json_out, "delta resume")
    prior = check_resume_report(report, DEVICES, "delta resume",
                                max_deliveries_per_target=2)
    if not report["delta"]:
        fail("delta resume lost the --delta flag in its report")
    # THE manifest property: after the resume, every device's durable
    # manifest reads v2 — the fleet agrees with itself about what runs
    # where, which is what the next delta campaign will diff against.
    if report["manifest_current"] != DEVICES:
        fail("delta resume left %d of %d manifests at v2" %
             (report["manifest_current"], DEVICES))
    # Delta bases are durable (agent slot manifests): the restarted
    # daemon patches the remaining targets with real deltas. The killed
    # run had one worker, so at most ONE device sits in the kill window
    # with its delivery manifest already at v2 (RecordDelivery lands
    # before the outcome checkpoint) — that device ships one full
    # package without attempting a patch; and at most one device whose
    # apply the kill interrupted can roll back through the fallback.
    if report["delta_fallbacks"] > 1:
        fail("delta resume: %d fallbacks; durable bases should patch "
             "cleanly" % report["delta_fallbacks"])
    if report["delta_deliveries"] < report["devices"] - 1:
        fail("delta resume shipped only %d deltas for %d targets: "
             "restart lost the durable bases" %
             (report["delta_deliveries"], report["devices"]))
    return prior


WATCHDOG_SLO = ("ratio(fleet_delivery_failures,fleet_delivery_attempts)"
                "<0.05@10s:pause;min=3")
WATCHDOG_SLO_NAME = "fleet_delivery_failures_ratio"


def watchdog_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "wd-state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")

    # The channel shape is part of the campaign fingerprint, so every
    # invocation below — including the resumes — repeats it. Every
    # delivery is corrupted: the failure ratio pins at 1.0 and the
    # pause-policy SLO breaches as soon as min=3 attempts are in the
    # window. The paused daemon then just sits on the dispatch gate.
    base = [
        fleetd, "--devices", str(DEVICES), "--groups", str(GROUPS),
        "--source", source, "--state-dir", state_dir,
        "--latency-us", str(LATENCY_US), "--attempts", "1",
        "--fault", "bitflips", "--fault-rate", "1.0",
    ]
    faulty = base + [
        "--workers", "1",
        "--slo", WATCHDOG_SLO, "--slo-interval", "0.1",
    ]
    proc = subprocess.Popen(faulty, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + DEADLINE_S
        stalled = False
        while time.time() < deadline:
            if proc.poll() is not None:
                # The campaign outran the watchdog (it should not: the
                # ratio breaches within the first few deliveries).
                return None
            if count_records(journal, (WATCHDOG_RECORD_TYPE,)) >= 1 and \
                    count_outcome_records(journal) >= 1:
                # The breach is durable and at least one target outcome
                # checkpointed around the pause. Cut the power on the
                # stalled daemon.
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                stalled = True
                break
            time.sleep(POLL_S)
        if not stalled:
            fail("watchdog never journaled a breach within %ds" % DEADLINE_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # A bare --resume must refuse: exit 3, a watchdog report naming the
    # breached SLO, and not a single dispatched target.
    refused_json = os.path.join(workdir, "wd-refused-%d.json" % attempt)
    refused = subprocess.run(base + ["--resume", "--json", refused_json],
                             stdout=subprocess.PIPE,
                             stderr=subprocess.STDOUT, text=True,
                             timeout=DEADLINE_S)
    if refused.returncode != 3:
        fail("resume of a watchdog-paused campaign exited %d, want 3:\n%s" %
             (refused.returncode, refused.stdout))
    with open(refused_json) as f:
        gate = json.load(f)
    if not gate.get("watchdog_stopped") or gate.get("watchdog_aborted"):
        fail("watchdog gate report wrong: %s" % gate)
    if gate["slo"] != WATCHDOG_SLO_NAME:
        fail("gate names SLO %r, want %r" % (gate["slo"], WATCHDOG_SLO_NAME))
    if gate["observed"] <= gate["threshold"]:
        fail("gate replayed a non-breach: observed %s <= threshold %s" %
             (gate["observed"], gate["threshold"]))
    if gate["original_targets"] != DEVICES or gate["remaining"] < 1:
        fail("gate arithmetic wrong: %s" % gate)
    # previously_completed is every checkpointed outcome; on the all-
    # corrupting channel each of them is a failure.
    prior = gate["previously_completed"]
    if gate["previously_failed"] != prior:
        fail("faulty channel checkpointed a success? %s" % gate)
    if prior + gate["remaining"] != DEVICES:
        fail("gate remaining does not partition the target set: %s" % gate)
    if count_records(journal, (WATCHDOG_RECORD_TYPE,)) < 1:
        fail("refused resume consumed the durable watchdog record")

    # Acknowledged resume completes the remaining targets exactly once.
    # The channel is still all-corrupting (it is fingerprinted into the
    # campaign identity), so every resumed target fails and the daemon
    # exits 1 — but it RAN them, which is the point of the ack.
    acked_json = os.path.join(workdir, "wd-acked-%d.json" % attempt)
    acked = subprocess.run(base + ["--resume", "--ack-watchdog",
                                   "--workers", "2", "--json", acked_json],
                           stdout=subprocess.PIPE,
                           stderr=subprocess.STDOUT, text=True,
                           timeout=DEADLINE_S)
    if acked.returncode != 1:
        fail("acked resume over the faulty channel exited %d, want 1 "
             "(all targets fail):\n%s" % (acked.returncode, acked.stdout))
    with open(acked_json) as f:
        report = json.load(f)
    if not report["resumed"]:
        fail("acknowledged resume did not report resumed=true")
    if report["previously_completed"] != prior:
        fail("acknowledged resume sees %d prior outcomes, gate saw %d" %
             (report["previously_completed"], prior))
    if report["previously_completed"] + report["devices"] != DEVICES:
        fail("acknowledged resume re-ran checkpointed targets: %s" % report)
    if report["deliveries"] != report["devices"]:
        fail("acked resume delivered %d times for %d remaining targets" %
             (report["deliveries"], report["devices"]))
    if report["failed"] != report["devices"]:
        fail("all-corrupting channel: %d of %d targets failed" %
             (report["failed"], report["devices"]))
    return prior


# Agent slot-manifest framing (src/agent/update_agent.cpp): 24-byte
# header "ERICSLT1" | u64 device | u32 crc32(payload) | u32 payload_len,
# then a RecordWriter payload. 0xFF encodes "no slot".
SLOT_MAGIC = b"ERICSLT1"
SLOT_HEADER = 24
NO_SLOT = 0xFF
# Device count of the short soak profile (kSoakShort in eric_fleetd.cpp):
# the kill waits until every one of them has a durable slot manifest.
SOAK_SHORT_DEVICES = 10


def check_slot_manifest(path, device_id):
    """Parses one agent slot manifest from outside the process and fails
    the test on any violation of the A/B crash-safety contract: CRC
    framing, idle phase (nobody stays wedged mid-apply), and image bytes
    matching their recorded CRC (no torn slot)."""
    with open(path, "rb") as f:
        data = f.read()
    label = os.path.basename(path)
    if len(data) < SLOT_HEADER or data[:8] != SLOT_MAGIC:
        fail("%s: bad magic/size (%d bytes)" % (label, len(data)))
    (header_dev,) = struct.unpack_from("<Q", data, 8)
    crc, payload_len = struct.unpack_from("<II", data, 16)
    payload = data[SLOT_HEADER:]
    if len(payload) != payload_len:
        fail("%s: payload is %d bytes, header says %d" %
             (label, len(payload), payload_len))
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        fail("%s: payload CRC mismatch (torn manifest survived?)" % label)
    if header_dev != device_id:
        fail("%s: header names device %d" % (label, header_dev))

    pos = 0
    (schema,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    (payload_dev,) = struct.unpack_from("<Q", payload, pos)
    pos += 8
    active, previous, staged, phase = struct.unpack_from("<4B", payload, pos)
    pos += 4
    pos += 5 * 8  # counters: applies/rollbacks/health/crash/persist
    if schema != 1 or payload_dev != device_id:
        fail("%s: schema=%d payload device=%d" % (label, schema, payload_dev))
    if phase != 0 or staged != NO_SLOT:
        fail("%s: device left mid-apply (phase=%d staged=%d) after the "
             "soak's final sweep" % (label, phase, staged))
    present_slots = []
    for _ in range(2):
        (present,) = struct.unpack_from("<B", payload, pos)
        pos += 1
        pos += 8  # version
        (fp_len,) = struct.unpack_from("<I", payload, pos)
        pos += 4 + fp_len
        (image_crc,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        (image_len,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        image = payload[pos:pos + image_len]
        pos += image_len
        if len(image) != image_len:
            fail("%s: slot image overruns the payload" % label)
        if present and zlib.crc32(image) & 0xFFFFFFFF != image_crc:
            fail("%s: TORN IMAGE — slot bytes do not match their CRC" %
                 label)
        present_slots.append(bool(present))
    if pos != len(payload):
        fail("%s: %d bytes of trailing garbage" % (label, len(payload) - pos))
    if active != NO_SLOT and (active > 1 or not present_slots[active]):
        fail("%s: active slot %d absent or out of range" % (label, active))


def count_slot_manifests(agent_dir):
    try:
        names = os.listdir(agent_dir)
    except OSError:
        return 0
    return sum(1 for n in names
               if n.startswith("slots-") and n.endswith(".bin"))


def soak_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "soak-state-%d" % attempt)
    agent_dir = os.path.join(state_dir, "agent")
    base = [fleetd, "--soak", "--soak-profile", "short",
            "--soak-seed", str(0x50A4 + attempt), "--state-dir", state_dir]

    proc = subprocess.Popen(base, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + DEADLINE_S
        killed = False
        while time.time() < deadline:
            if proc.poll() is not None:
                return None  # soak outran the kill; caller retries
            if count_slot_manifests(agent_dir) >= SOAK_SHORT_DEVICES:
                # Every seed device has a durable slot manifest: the
                # storm is live. Cut the power.
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                killed = True
                break
            time.sleep(POLL_S)
        if not killed:
            fail("soak produced no slot manifests within %ds" % DEADLINE_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The rerun inherits whatever the kill left — flipped-but-unproven
    # slots, a half-finished rotation, churned enrollments — and must
    # converge: recover every agent, run the full storm again, and
    # report zero invariant violations.
    json_out = os.path.join(workdir, "soak-rerun-%d.json" % attempt)
    report = run_json(base + ["--json", json_out], json_out, "soak rerun")
    if not report.get("pass") or report.get("violations"):
        fail("soak rerun over the killed state dir reported violations: %s"
             % report.get("violations"))

    # Outside-the-process proof: every slot manifest on disk parses
    # clean — no torn image, no device wedged mid-apply.
    parsed = 0
    for name in sorted(os.listdir(agent_dir)):
        if not (name.startswith("slots-") and name.endswith(".bin")):
            continue
        check_slot_manifest(os.path.join(agent_dir, name),
                            int(name[len("slots-"):-len(".bin")]))
        parsed += 1
    if parsed < SOAK_SHORT_DEVICES:
        fail("only %d slot manifests survived the soak (seeded %d)" %
             (parsed, SOAK_SHORT_DEVICES))
    return parsed


def soak_scenario(fleetd, workdir):
    for attempt in range(3):
        parsed = soak_attempt(fleetd, workdir, attempt)
        if parsed is not None:
            print("PASS (chaos soak): killed -9 mid-storm; rerun converged "
                  "with 0 violations; %d slot manifests parse clean "
                  "(no torn or mid-apply device)" % parsed)
            return
    fail("soak finished before kill -9 in 3 attempts "
         "(host too fast? short profile too small)")


def run_scenario(name, attempt_fn, fleetd, workdir, total):
    for attempt in range(3):
        prior = attempt_fn(fleetd, workdir, attempt)
        if prior is not None:
            print("PASS (%s): killed -9 after %d durable checkpoints; "
                  "resume completed the remaining %d targets exactly once" %
                  (name, prior, total - prior))
            return
    fail("%s finished before kill -9 in 3 attempts "
         "(host too fast? raise LATENCY_US)" % name)


def main():
    if len(sys.argv) != 2:
        fail("usage: fleetd_resume_test.py /path/to/eric_fleetd")
    fleetd = sys.argv[1]
    # Manual temp-dir management: cleanup must tolerate files a kill -9'd
    # daemon left behind (or a straggler still flushing on slow CI).
    workdir = tempfile.mkdtemp(prefix="eric-fleetd-resume-")
    try:
        run_scenario("plain campaign", plain_attempt, fleetd, workdir,
                     DEVICES)
        run_scenario("mixed-isa campaign", mixed_isa_attempt, fleetd,
                     workdir, DEVICES)
        run_scenario("watchdog pause", watchdog_attempt, fleetd, workdir,
                     DEVICES)
        run_scenario("listen-mode campaign", listen_attempt, fleetd,
                     workdir, DEVICES)
        run_scenario("telemetry export", metrics_attempt, fleetd, workdir,
                     DEVICES)
        run_scenario("epoch rotation", rotation_attempt, fleetd, workdir,
                     DEVICES // GROUPS)
        run_scenario("delta campaign", delta_attempt, fleetd, workdir,
                     DEVICES)
        soak_scenario(fleetd, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
