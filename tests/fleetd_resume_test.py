#!/usr/bin/env python3
"""End-to-end crash-resume test for eric_fleetd's durable state.

Drives the REAL binary through the acceptance scenario:

  1. start a campaign with --state-dir over a stretched channel
  2. kill -9 the daemon once at least one target outcome is durably
     checkpointed (polled off campaign.wal) and at least one remains
  3. restart with --resume and assert the campaign completes with no
     device delivered twice and no enrolled device lost

Exactly-once is checked from the resume run's JSON: the previously
checkpointed targets plus this run's dispatched targets must partition
the recovered fleet, and the resumed run must only have dispatched the
complement (deliveries == remaining targets).

Usage: fleetd_resume_test.py /path/to/eric_fleetd
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

DEVICES = 16
# Stretch each delivery so the kill window is wide even on a fast box.
LATENCY_US = 50000

TINY_PROGRAM = """
fn main() {
  var sum = 0;
  var i = 1;
  while (i <= 10) { sum = sum + i * i; i = i + 1; }
  return sum;
}
"""


def fail(message):
    print("FAIL: " + message)
    sys.exit(1)


def run_attempt(fleetd, workdir, attempt):
    state_dir = os.path.join(workdir, "state-%d" % attempt)
    source = os.path.join(workdir, "tiny.eric")
    with open(source, "w") as f:
        f.write(TINY_PROGRAM)
    journal = os.path.join(state_dir, "campaign.wal")
    json_out = os.path.join(workdir, "resume-%d.json" % attempt)

    base = [
        fleetd, "--devices", str(DEVICES), "--groups", "2",
        "--source", source, "--state-dir", state_dir,
    ]
    first = subprocess.Popen(
        base + ["--workers", "1", "--latency-us", str(LATENCY_US)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    # Wait for >= 2 durable outcome records (journal larger than header +
    # begin record + one outcome), but kill well before the campaign ends.
    begin_size = 16 + 9 + 16 + 8 * DEVICES  # header + frame + begin payload
    outcome_size = 9 + 13                   # frame + outcome payload
    want = begin_size + 2 * outcome_size
    deadline = time.time() + 60
    killed_midway = False
    while time.time() < deadline:
        if first.poll() is not None:
            break  # finished before we killed it: retry with more latency
        try:
            size = os.path.getsize(journal)
        except OSError:
            size = 0
        if size >= want:
            first.send_signal(signal.SIGKILL)
            first.wait()
            killed_midway = True
            break
        time.sleep(0.02)
    if not killed_midway:
        first.wait()
        return None  # campaign outran the kill; caller retries

    # Restart and resume.
    resume = subprocess.run(
        base + ["--workers", "2", "--resume", "--json", json_out],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=120)
    if resume.returncode != 0:
        fail("resume run exited %d:\n%s" % (resume.returncode, resume.stdout))

    with open(json_out) as f:
        report = json.load(f)

    if not report["resumed"]:
        fail("resume run did not report resumed=true")
    # No enrolled device lost: the whole fleet came back from disk.
    if report["fleet_devices"] != DEVICES:
        fail("recovered fleet has %d devices, enrolled %d" %
             (report["fleet_devices"], DEVICES))
    if report["original_targets"] != DEVICES:
        fail("journal lost targets: %d of %d" %
             (report["original_targets"], DEVICES))
    # No device delivered twice: the resume run dispatched exactly the
    # unjournaled complement, once each.
    prior = report["previously_completed"]
    if prior < 1:
        fail("kill landed before any checkpoint (prior=%d)" % prior)
    if prior + report["devices"] != DEVICES:
        fail("checkpointed %d + resumed %d != fleet %d" %
             (prior, report["devices"], DEVICES))
    if report["deliveries"] != report["devices"]:
        fail("resumed run delivered %d times for %d targets" %
             (report["deliveries"], report["devices"]))
    if report["succeeded"] != report["devices"]:
        fail("resumed run: %d of %d targets succeeded" %
             (report["succeeded"], report["devices"]))

    # And the journal agrees the campaign is over: a second --resume finds
    # nothing to continue (it starts a fresh campaign instead of replaying
    # or double-delivering the finished one).
    idle = subprocess.run(
        base + ["--resume", "--json", json_out + ".idle"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=120)
    if idle.returncode != 0:
        fail("post-completion resume exited %d:\n%s" %
             (idle.returncode, idle.stdout))
    with open(json_out + ".idle") as f:
        idle_report = json.load(f)
    if idle_report["resumed"] or idle_report["previously_completed"] != 0:
        fail("completed campaign still resumable: %s" % idle_report)

    return prior


def main():
    if len(sys.argv) != 2:
        fail("usage: fleetd_resume_test.py /path/to/eric_fleetd")
    fleetd = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="eric-fleetd-resume-") as workdir:
        for attempt in range(3):
            prior = run_attempt(fleetd, workdir, attempt)
            if prior is not None:
                print("PASS: killed -9 after %d durable checkpoints; "
                      "resume completed the remaining %d targets "
                      "exactly once" % (prior, DEVICES - prior))
                return
        fail("campaign finished before kill -9 in 3 attempts "
             "(host too fast? raise LATENCY_US)")


if __name__ == "__main__":
    main()
