// Unit tests for the support library: Status/Result, hex, BitVector, RNG,
// and the shared JSON string escaper.
#include <gtest/gtest.h>

#include <set>

#include "support/bench_json.h"
#include "support/bitvector.h"
#include "support/hex.h"
#include "support/json_escape.h"
#include "support/rng.h"
#include "support/status.h"

namespace eric {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kParseError, "bad byte");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kParseError);
  EXPECT_EQ(s.message(), "bad byte");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad byte");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string moved = *std::move(r);
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(HexTest, EncodeDecodeRoundtrip) {
  const std::vector<uint8_t> bytes = {0x00, 0x01, 0xAB, 0xFF, 0x10};
  const std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex, "0001abff10");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
}

TEST(HexTest, DecodeUppercase) {
  auto decoded = HexDecode("ABCDEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], 0xAB);
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, DecodeRejectsBadDigit) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(HexTest, Hex64Format) {
  EXPECT_EQ(Hex64(0xDEADBEEF12345678ull), "0xdeadbeef12345678");
  EXPECT_EQ(Hex32(0x1234), "0x00001234");
}

TEST(BitVectorTest, EmptyByDefault) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.ByteSize(), 0u);
}

TEST(BitVectorTest, SetGet) {
  BitVector v(10);
  EXPECT_FALSE(v.Get(3));
  v.Set(3, true);
  EXPECT_TRUE(v.Get(3));
  v.Set(3, false);
  EXPECT_FALSE(v.Get(3));
}

TEST(BitVectorTest, PushBackGrows) {
  BitVector v;
  for (int i = 0; i < 20; ++i) v.PushBack(i % 3 == 0);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_EQ(v.ByteSize(), 3u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v.Get(i), i % 3 == 0) << i;
}

TEST(BitVectorTest, PopCount) {
  BitVector v(100);
  for (size_t i = 0; i < 100; i += 7) v.Set(i, true);
  EXPECT_EQ(v.PopCount(), 15u);  // ceil(100/7)
}

TEST(BitVectorTest, InitialValueTrueCanonicalizesPadding) {
  BitVector v(9, true);
  EXPECT_EQ(v.PopCount(), 9u);
  EXPECT_EQ(v.bytes()[1], 0x01);  // padding bits cleared
}

TEST(BitVectorTest, SerializationRoundtrip) {
  BitVector v(13);
  v.Set(0, true);
  v.Set(12, true);
  BitVector back = BitVector::FromBytes(v.bytes(), 13);
  EXPECT_EQ(v, back);
}

TEST(RngTest, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsReasonable) {
  Xoshiro256 rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  EXPECT_EQ(JsonQuoted("crc32 workload"), "\"crc32 workload\"");
  EXPECT_EQ(JsonQuoted(""), "\"\"");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndShortForms) {
  EXPECT_EQ(JsonQuoted("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonQuoted("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuoted("line1\nline2\tend\r\b\f"),
            "\"line1\\nline2\\tend\\r\\b\\f\"");
}

TEST(JsonEscapeTest, ControlBytesBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonQuoted(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // An embedded NUL must escape, not truncate the document.
  EXPECT_EQ(JsonQuoted(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonEscapeTest, HighBytesSurviveWithoutSignExtension) {
  // UTF-8 multibyte sequences (bytes >= 0x80, negative as signed char)
  // must pass through byte-for-byte — a sign-extended %04x would smear
  // them into "\uffffffe9"-style garbage.
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(JsonQuoted(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscapeTest, JsonWriterRoutesStringsThroughTheEscaper) {
  JsonWriter json;
  json.BeginObject();
  json.Field("name", "quote\" and \nnewline");
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"name\":\"quote\\\" and \\nnewline\"}");
}

TEST(RngTest, SplitMix64KnownStream) {
  // SplitMix64 is the standard seeding PRNG; check two seeds give distinct
  // non-zero outputs and are reproducible.
  SplitMix64 a(0), b(0);
  EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(1);
  EXPECT_NE(SplitMix64(0).Next(), c.Next());
}

}  // namespace
}  // namespace eric
