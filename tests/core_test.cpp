// End-to-end tests for ERIC's core: software source -> package -> HDE ->
// trusted execution, covering every encryption mode and every threat from
// the paper's threat model (Sec. II.C).
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "core/encryption_policy.h"
#include "core/hde.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "isa/decoder.h"
#include "isa/encoder.h"

namespace eric::core {
namespace {

constexpr uint64_t kDeviceSeed = 0xDE71CE;
constexpr uint64_t kOtherDeviceSeed = 0xBAD0DE;

const char* kProgram = R"(
  var data[16];
  fn main() {
    var i = 0;
    while (i < 16) {
      data[i] = i * 3;
      i = i + 1;
    }
    var sum = 0;
    i = 0;
    while (i < 16) {
      sum = sum + data[i];
      i = i + 1;
    }
    return sum;   // 3 * (0+..+15) = 360
  }
)";
constexpr int64_t kExpectedExit = 360;

struct TestRig {
  TestRig(CipherKind cipher = CipherKind::kXor)
      : device(kDeviceSeed, config, cipher),
        source(device.Enroll(), config, cipher) {}

  crypto::KeyConfig config;
  TrustedDevice device;
  SoftwareSource source;
};

std::vector<uint8_t> PackageBytes(const TestRig& rig,
                                  const EncryptionPolicy& policy,
                                  const char* program = kProgram) {
  auto built = rig.source.CompileAndPackage(program, policy);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return pkg::Serialize(built->packaging.package);
}

// --- Happy paths: each mode decrypts and runs ------------------------------

TEST(EndToEndTest, FullEncryptionRuns) {
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
  EXPECT_GT(run->hde_cycles.decryption, 0u);
  EXPECT_GT(run->hde_cycles.signature, 0u);
}

TEST(EndToEndTest, PartialEncryptionRuns) {
  for (double fraction : {0.1, 0.5, 0.9}) {
    TestRig rig;
    const auto wire =
        PackageBytes(rig, EncryptionPolicy::PartialRandom(fraction));
    auto run = rig.device.ReceiveAndRun(wire);
    ASSERT_TRUE(run.ok()) << fraction << ": " << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kExpectedExit) << fraction;
  }
}

TEST(EndToEndTest, MemoryAccessSelectionRuns) {
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::PartialMemoryAccesses());
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
}

TEST(EndToEndTest, FieldLevelEncryptionRuns) {
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::FieldLevelPointers());
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
}

TEST(EndToEndTest, UnencryptedSignedPackageRuns) {
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::None());
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
}

TEST(EndToEndTest, AesCtrCipherAlsoWorks) {
  TestRig rig(CipherKind::kAesCtr);
  const auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
}

TEST(EndToEndTest, EncryptedAndPlainExecutionIdentical) {
  TestRig rig;
  auto built =
      rig.source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);
  auto secure = rig.device.ReceiveAndRun(wire);
  ASSERT_TRUE(secure.ok());
  const auto plain = rig.device.RunPlaintext(built->compile.program.image);
  // Same instruction counts, same result: the HDE's only effect is the
  // load-path latency.
  EXPECT_EQ(secure->exec.exit_code, plain.exec.exit_code);
  EXPECT_EQ(secure->exec.instructions, plain.exec.instructions);
  EXPECT_EQ(secure->exec.cycles, plain.exec.cycles);
  EXPECT_GT(secure->total_cycles(), plain.total_cycles());
}

// --- Threat model (Sec. II.C) ----------------------------------------------

// Threat (i): hijacking the program for reverse engineering — static view.
TEST(ThreatTest, CiphertextHidesInstructions) {
  TestRig rig;
  auto built =
      rig.source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  const auto& plain = built->compile.program.image;
  const auto& encrypted = built->packaging.package.text;
  ASSERT_EQ(plain.size(), encrypted.size());
  size_t identical = 0;
  for (size_t i = 0; i < plain.size(); ++i) {
    identical += plain[i] == encrypted[i];
  }
  // A byte survives by chance with p = 1/256.
  EXPECT_LT(static_cast<double>(identical) / plain.size(), 0.05);
}

// Threat (ii): running programs of unknown origin on user hardware.
TEST(ThreatTest, PackageFromWrongSourceRejected) {
  TestRig rig;
  // An impostor source with a random key (never enrolled with the device).
  crypto::Key256 wrong_key;
  wrong_key.fill(0x66);
  SoftwareSource impostor(wrong_key, rig.config);
  auto built = impostor.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = rig.device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kVerificationFailed);
}

// Threat (iii): running the program on unlicensed/unverified hardware.
TEST(ThreatTest, WrongDeviceCannotDecrypt) {
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  // A different physical device (different silicon seed).
  TrustedDevice other(kOtherDeviceSeed, rig.config);
  other.Enroll();
  auto run = other.ReceiveAndRun(wire);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kVerificationFailed);
}

// Threat (iv): malicious modification or soft errors in transit.
TEST(ThreatTest, BitFlipInTextDetected) {
  TestRig rig;
  auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  wire[wire.size() / 2] ^= 0x10;  // flip one bit mid-image
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_FALSE(run.ok());
}

TEST(ThreatTest, BitFlipInSignatureDetected) {
  TestRig rig;
  auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  wire[wire.size() - 1] ^= 0x01;  // signature is the trailing 32 bytes
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kVerificationFailed);
}

TEST(ThreatTest, TruncatedPackageRejected) {
  TestRig rig;
  auto wire = PackageBytes(rig, EncryptionPolicy::Full());
  wire.resize(wire.size() - 7);
  auto run = rig.device.ReceiveAndRun(wire);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kCorruptPackage);
}

TEST(ThreatTest, EveryByteOfHeaderIsCovered) {
  // Flipping any single header byte must never yield a successful run
  // with wrong semantics: it either fails parse or fails validation.
  TestRig rig;
  const auto wire = PackageBytes(rig, EncryptionPolicy::PartialRandom(0.5));
  for (size_t i = 0; i < 36; ++i) {
    auto copy = wire;
    copy[i] ^= 0xFF;
    auto run = rig.device.ReceiveAndRun(copy);
    if (run.ok()) {
      // Only acceptable if the flip was semantically neutral AND the
      // program still behaves identically.
      EXPECT_EQ(run->exec.exit_code, kExpectedExit) << "header byte " << i;
    }
  }
}

TEST(ThreatTest, MapTamperingDetected) {
  // Flip a bit in the encryption map: the HDE decrypts the wrong subset,
  // the recomputed digest changes, validation fails.
  TestRig rig;
  auto built = rig.source.CompileAndPackage(
      kProgram, EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  pkg::Package tampered = built->packaging.package;
  tampered.encryption_map.Set(3, !tampered.encryption_map.Get(3));
  auto run = rig.device.ReceiveAndRun(pkg::Serialize(tampered));
  ASSERT_FALSE(run.ok());
}

TEST(ThreatTest, ReplayAcrossEpochsRejected) {
  // Device rotates to epoch 1; packages built for epoch 0 must fail fast.
  crypto::KeyConfig old_config;  // epoch 0
  TrustedDevice device(kDeviceSeed, old_config);
  SoftwareSource old_source(device.Enroll(), old_config);
  auto built =
      old_source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());

  crypto::KeyConfig new_config;
  new_config.epoch = 1;
  TrustedDevice rotated(kDeviceSeed, new_config);
  rotated.Enroll();
  auto run = rotated.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kAuthenticationFailed);
}

TEST(ThreatTest, SameSiliconNewEpochStillWorksAfterRekey) {
  // Key rotation: same physical device, new epoch, re-handshake. This is
  // the paper's "long-term key usage, enabling different key
  // configurations" property.
  crypto::KeyConfig config;
  config.epoch = 7;
  TrustedDevice device(kDeviceSeed, config);
  SoftwareSource source(device.Enroll(), config);
  auto built = source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpectedExit);
}

// --- Policy machinery ---------------------------------------------------------

TEST(PolicyTest, SelectionFractionRoughlyHonored) {
  std::vector<isa::Instr> instrs(1000);
  const BitVector map =
      SelectInstructions(EncryptionPolicy::PartialRandom(0.3), instrs);
  EXPECT_GT(map.PopCount(), 230u);
  EXPECT_LT(map.PopCount(), 370u);
}

TEST(PolicyTest, SelectionIsSeedDeterministic) {
  std::vector<isa::Instr> instrs(100);
  const auto a =
      SelectInstructions(EncryptionPolicy::PartialRandom(0.5, 1), instrs);
  const auto b =
      SelectInstructions(EncryptionPolicy::PartialRandom(0.5, 1), instrs);
  const auto c =
      SelectInstructions(EncryptionPolicy::PartialRandom(0.5, 2), instrs);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PolicyTest, MemoryAccessSelectionPicksLoadsStores) {
  std::vector<isa::Instr> instrs = {
      isa::MakeI(isa::Op::kAddi, 1, 1, 0),
      isa::MakeLoad(isa::Op::kLd, 1, 2, 0),
      isa::MakeStore(isa::Op::kSd, 1, 2, 0),
      isa::MakeBranch(isa::Op::kBeq, 1, 2, 0),
  };
  const auto map =
      SelectInstructions(EncryptionPolicy::PartialMemoryAccesses(), instrs);
  EXPECT_FALSE(map.Get(0));
  EXPECT_TRUE(map.Get(1));
  EXPECT_TRUE(map.Get(2));
  EXPECT_FALSE(map.Get(3));
}

TEST(PolicyTest, EveryNthStride) {
  EncryptionPolicy p;
  p.mode = pkg::EncryptionMode::kPartial;
  p.strategy = SelectionStrategy::kEveryNth;
  p.stride = 3;
  std::vector<isa::Instr> instrs(9);
  const auto map = SelectInstructions(p, instrs);
  EXPECT_EQ(map.PopCount(), 3u);
  EXPECT_TRUE(map.Get(0));
  EXPECT_TRUE(map.Get(3));
  EXPECT_TRUE(map.Get(6));
}

TEST(PolicyTest, FieldMaskComputation) {
  EXPECT_EQ(FieldMask(0, 31), 0xFFFFFFFFu);
  EXPECT_EQ(FieldMask(20, 31), 0xFFF00000u);
  EXPECT_EQ(FieldMask(7, 11), 0x00000F80u);
  EXPECT_EQ(FieldMask(12, 5), 0u);   // inverted range
  EXPECT_EQ(FieldMask(0, 32), 0u);   // out of range
}

TEST(PolicyTest, FieldSpecsRejectOpcodeBits) {
  TestRig rig;
  EncryptionPolicy policy = EncryptionPolicy::FieldLevelPointers();
  policy.field_specs.push_back(
      {static_cast<uint8_t>(isa::OpClass::kAlu), 0, 6});  // covers opcode
  auto compiled = compiler::Compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto built = rig.source.BuildPackage(compiled->program, policy);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), ErrorCode::kInvalidArgument);
}

// --- Field-level encryption details -----------------------------------------

TEST(FieldLevelTest, OpcodesStayPlaintext) {
  TestRig rig;
  auto built = rig.source.CompileAndPackage(
      kProgram, EncryptionPolicy::FieldLevelPointers());
  ASSERT_TRUE(built.ok());
  const auto& plain = built->compile.program.image;
  const auto& encrypted = built->packaging.package.text;
  // Decode the plaintext stream; at each 32-bit instruction, the low 7
  // bits (width + opcode) must be byte-identical in the ciphertext.
  size_t offset = 0;
  for (const isa::Instr& instr : built->compile.program.instructions) {
    EXPECT_EQ(plain[offset] & 0x7F, encrypted[offset] & 0x7F)
        << "offset " << offset;
    offset += static_cast<size_t>(instr.SizeBytes());
  }
}

TEST(FieldLevelTest, PointerImmediatesChange) {
  TestRig rig;
  auto built = rig.source.CompileAndPackage(
      kProgram, EncryptionPolicy::FieldLevelPointers());
  ASSERT_TRUE(built.ok());
  const auto& plain = built->compile.program.image;
  const auto& encrypted = built->packaging.package.text;
  // At least some flagged loads/stores must have modified immediates.
  size_t changed = 0;
  size_t offset = 0;
  size_t index = 0;
  for (const isa::Instr& instr : built->compile.program.instructions) {
    if (built->packaging.package.encryption_map.Get(index)) {
      bool differs = false;
      for (int b = 0; b < 4; ++b) {
        if (plain[offset + static_cast<size_t>(b)] !=
            encrypted[offset + static_cast<size_t>(b)]) {
          differs = true;
        }
      }
      changed += differs;
    }
    offset += static_cast<size_t>(instr.SizeBytes());
    ++index;
  }
  EXPECT_GT(changed, 0u);
}

TEST(FieldLevelTest, CiphertextStillDisassembles) {
  // The paper: "If the opcode parts of the instructions are not encrypted
  // ... it will also make it difficult to understand that the program is
  // encrypted." The ciphertext must decode as a valid instruction stream.
  TestRig rig;
  auto built = rig.source.CompileAndPackage(
      kProgram, EncryptionPolicy::FieldLevelPointers());
  ASSERT_TRUE(built.ok());
  auto decoded = isa::DecodeStream(std::span<const uint8_t>(
      built->packaging.package.text.data(),
      built->compile.program.text_bytes));
  ASSERT_TRUE(decoded.ok());
  size_t invalid = 0;
  for (const auto& instr : *decoded) {
    invalid += instr.op == isa::Op::kInvalid;
  }
  EXPECT_EQ(invalid, 0u);
}

// --- Package size bookkeeping (pre-Fig 5 sanity) -----------------------------

TEST(SizeTest, FullEncryptionAddsOnlySignature) {
  TestRig rig;
  auto full = rig.source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(full.ok());
  const auto breakdown = pkg::BreakdownOf(full->packaging.package);
  EXPECT_EQ(breakdown.map_bytes, 0u);
  EXPECT_EQ(breakdown.signature_bytes, 32u);
}

TEST(SizeTest, PartialEncryptionAddsOneBitPerInstruction) {
  TestRig rig;
  auto partial = rig.source.CompileAndPackage(
      kProgram, EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(partial.ok());
  const auto& p = partial->packaging.package;
  const auto breakdown = pkg::BreakdownOf(p);
  EXPECT_EQ(breakdown.map_bytes, (p.instr_count + 7) / 8);
}

TEST(SizeTest, WireRoundtrip) {
  TestRig rig;
  for (const auto& policy :
       {EncryptionPolicy::Full(), EncryptionPolicy::PartialRandom(0.4),
        EncryptionPolicy::FieldLevelPointers(), EncryptionPolicy::None()}) {
    auto built = rig.source.CompileAndPackage(kProgram, policy);
    ASSERT_TRUE(built.ok());
    const auto wire = pkg::Serialize(built->packaging.package);
    EXPECT_EQ(wire.size(), built->packaging.package.WireSize());
    auto parsed = pkg::Parse(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->mode, built->packaging.package.mode);
    EXPECT_EQ(parsed->text, built->packaging.package.text);
    EXPECT_EQ(parsed->instr_count, built->packaging.package.instr_count);
    EXPECT_EQ(parsed->signature, built->packaging.package.signature);
  }
}

// --- Timing instrumentation ----------------------------------------------------

TEST(TimingTest, PackagingTimingsPopulated) {
  TestRig rig;
  auto built = rig.source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->packaging.timings.sign_microseconds, 0.0);
  EXPECT_GT(built->packaging.timings.encrypt_microseconds, 0.0);
  EXPECT_GT(built->packaging.timings.total(), 0.0);
  EXPECT_GT(built->compile.TotalMicroseconds(), 0.0);
}

TEST(TimingTest, HdeCyclesScaleWithImageSize) {
  TestRig rig;
  const char* small_program = "fn main() { return 1; }";
  auto small = rig.source.CompileAndPackage(small_program,
                                            EncryptionPolicy::Full());
  auto large = rig.source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto small_run =
      rig.device.ReceiveAndRun(pkg::Serialize(small->packaging.package));
  auto large_run =
      rig.device.ReceiveAndRun(pkg::Serialize(large->packaging.package));
  ASSERT_TRUE(small_run.ok());
  ASSERT_TRUE(large_run.ok());
  EXPECT_LT(small_run->hde_cycles.total(), large_run->hde_cycles.total());
}

TEST(TimingTest, UnenrolledDeviceRefuses) {
  crypto::KeyConfig config;
  HardwareDecryptionEngine hde(kDeviceSeed, config);
  pkg::Package empty;
  auto result = hde.Process(empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace eric::core
