// Channel tests + the end-to-end property: no channel fault yields
// misexecution — every delivery either runs the exact signed program or is
// rejected by the HDE.
#include <gtest/gtest.h>

#include <limits>

#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "net/channel.h"
#include "pkg/delta.h"
#include "workloads/workloads.h"

namespace eric::net {
namespace {

TEST(ChannelTest, FaithfulDeliveryByDefault) {
  Channel channel;
  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  EXPECT_EQ(channel.Deliver(bytes), bytes);
  EXPECT_EQ(channel.log().back().mutations, 0u);
}

TEST(ChannelTest, BitFlipsChangeExactlyNBits) {
  ChannelConfig config;
  config.fault = ChannelFault::kRandomBitFlips;
  config.bit_flips = 3;
  Channel channel(config);
  const std::vector<uint8_t> original(256, 0);
  const auto delivered = channel.Deliver(original);
  int flipped = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    flipped += std::popcount(static_cast<unsigned>(original[i] ^ delivered[i]));
  }
  // Flips can collide on the same bit (flip back); 3 flips => 1 or 3 bits.
  EXPECT_GE(flipped, 1);
  EXPECT_LE(flipped, 3);
}

TEST(ChannelTest, BytePatchWritesRange) {
  ChannelConfig config;
  config.fault = ChannelFault::kBytePatch;
  config.patch_offset = 4;
  config.patch_length = 3;
  config.patch_value = 0xAB;
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0));
  EXPECT_EQ(delivered[4], 0xAB);
  EXPECT_EQ(delivered[6], 0xAB);
  EXPECT_EQ(delivered[3], 0x00);
  EXPECT_EQ(delivered[7], 0x00);
}

TEST(ChannelTest, BytePatchStraddlingTailClampsAndCountsOverlap) {
  ChannelConfig config;
  config.fault = ChannelFault::kBytePatch;
  config.patch_offset = 14;  // window [14, 18) over a 16-byte body
  config.patch_length = 4;
  config.patch_value = 0xAB;
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0));
  ASSERT_EQ(delivered.size(), 16u);
  EXPECT_EQ(delivered[13], 0x00);
  EXPECT_EQ(delivered[14], 0xAB);
  EXPECT_EQ(delivered[15], 0xAB);
  // The record reports the bytes actually mutated, not the nominal window.
  EXPECT_EQ(channel.log().back().mutations, 2u);
}

TEST(ChannelTest, PatchAtOrPastTailMutatesNothing) {
  for (const ChannelFault fault :
       {ChannelFault::kBytePatch, ChannelFault::kInstructionPatch}) {
    for (const size_t offset : {size_t{16}, size_t{1000}}) {
      ChannelConfig config;
      config.fault = fault;
      config.patch_offset = offset;
      config.patch_value = 0xAB;
      Channel channel(config);
      const std::vector<uint8_t> original(16, 0);
      EXPECT_EQ(channel.Deliver(original), original)
          << ChannelFaultName(fault) << " offset " << offset;
      EXPECT_EQ(channel.log().back().mutations, 0u);
    }
  }
}

TEST(ChannelTest, PatchOffsetNearSizeMaxDoesNotWrapOntoPrefix) {
  // Regression: patch_offset + i used to be computed before the bounds
  // check, so an offset near SIZE_MAX wrapped around and patched the
  // front of the body — a mutation at an address the config never named.
  for (const ChannelFault fault :
       {ChannelFault::kBytePatch, ChannelFault::kInstructionPatch}) {
    ChannelConfig config;
    config.fault = fault;
    config.patch_offset = std::numeric_limits<size_t>::max() - 1;
    config.patch_length = 4;
    config.patch_value = 0xAB;
    Channel channel(config);
    const std::vector<uint8_t> original(16, 0);
    EXPECT_EQ(channel.Deliver(original), original) << ChannelFaultName(fault);
    EXPECT_EQ(channel.log().back().mutations, 0u);
  }
}

TEST(ChannelTest, InstructionPatchStraddlingTailClampsAndCountsOverlap) {
  ChannelConfig config;
  config.fault = ChannelFault::kInstructionPatch;
  config.patch_offset = 15;  // one byte of the 4-byte instruction fits
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0xFF));
  ASSERT_EQ(delivered.size(), 16u);
  EXPECT_EQ(delivered[14], 0xFF);
  EXPECT_EQ(delivered[15], 0x13);  // first injected byte only
  EXPECT_EQ(channel.log().back().mutations, 1u);
}

TEST(ChannelTest, TruncateDropsTail) {
  ChannelConfig config;
  config.fault = ChannelFault::kTruncate;
  config.truncate_bytes = 10;
  Channel channel(config);
  EXPECT_EQ(channel.Deliver(std::vector<uint8_t>(64, 1)).size(), 54u);
}

TEST(ChannelTest, DuplicateDoubles) {
  ChannelConfig config;
  config.fault = ChannelFault::kDuplicate;
  Channel channel(config);
  EXPECT_EQ(channel.Deliver(std::vector<uint8_t>(10, 2)).size(), 20u);
}

TEST(ChannelTest, EveryFaultHasName) {
  for (int f = 0; f <= static_cast<int>(ChannelFault::kDuplicate); ++f) {
    EXPECT_NE(ChannelFaultName(static_cast<ChannelFault>(f)), "unknown");
  }
}

// --- End-to-end integrity property --------------------------------------------

class FaultSweepTest : public ::testing::TestWithParam<ChannelFault> {};

TEST_P(FaultSweepTest, NoFaultCausesMisexecution) {
  const auto* workload = workloads::FindWorkload("bitcount");
  ASSERT_NE(workload, nullptr);
  const int64_t expected = workload->reference();

  crypto::KeyConfig config;
  core::TrustedDevice device(0x5EED, config);
  core::SoftwareSource source(device.Enroll(), config);
  auto built = source.CompileAndPackage(workload->source,
                                        core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  // Sweep many channel instances of this fault class (different seeds /
  // offsets); every delivery must either run correctly or be rejected.
  int accepted = 0, rejected = 0;
  for (uint64_t trial = 0; trial < 25; ++trial) {
    ChannelConfig cfg;
    cfg.fault = GetParam();
    cfg.seed = 0x1000 + trial;
    cfg.bit_flips = 1 + static_cast<uint32_t>(trial % 4);
    cfg.patch_offset = 36 + trial * 7;  // walk through the body
    cfg.truncate_bytes = 1 + trial;
    Channel channel(cfg);
    const auto delivered = channel.Deliver(wire);
    auto run = device.ReceiveAndRun(delivered);
    if (run.ok()) {
      ++accepted;
      EXPECT_EQ(run->exec.exit_code, expected)
          << ChannelFaultName(GetParam()) << " trial " << trial
          << ": EXECUTED A MODIFIED PROGRAM";
    } else {
      ++rejected;
    }
  }
  if (GetParam() == ChannelFault::kNone) {
    EXPECT_EQ(accepted, 25);
  } else {
    // Every mutating fault must be caught every time (mutations == 0 can
    // happen only for kNone).
    EXPECT_EQ(accepted, 0) << ChannelFaultName(GetParam());
    EXPECT_EQ(rejected, 25);
  }
}

// --- Delta payloads over the hostile channel ----------------------------------

TEST(DeltaChannelTest, CorruptedDeltaPayloadFailsClosed) {
  // Seal two releases of one program for the same device, diff their
  // wire images, and push the patch through a byte-patching channel: the
  // device-side ApplyDelta must reject every corrupted delivery, and a
  // faithful delivery must reconstruct — and run — the exact v2 image.
  constexpr const char* kV1 = R"(
    fn main() { var x = 6; return x * 7; }
  )";
  constexpr const char* kV2 = R"(
    fn main() { var x = 6; return x * 8; }
  )";
  crypto::KeyConfig config;
  core::TrustedDevice device(0xDE17A, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto policy = core::EncryptionPolicy::PartialRandom(0.5);
  auto v1 = source.CompileAndPackage(kV1, policy);
  auto v2 = source.CompileAndPackage(kV2, policy);
  ASSERT_TRUE(v1.ok() && v2.ok());
  const auto wire1 = pkg::Serialize(v1->packaging.package);
  const auto wire2 = pkg::Serialize(v2->packaging.package);
  const auto delta = pkg::EncodeDelta(wire1, wire2);

  // The attacked hop: every byte-patched delivery is rejected by the
  // patch CRCs before anything reaches the HDE.
  for (uint64_t trial = 0; trial < 25; ++trial) {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kBytePatch;
    cfg.seed = 0x2000 + trial;
    cfg.patch_offset = trial * 3 % delta.size();
    Channel channel(cfg);
    const auto delivered = channel.Deliver(delta);
    if (delivered == delta) continue;  // patch wrote identical bytes
    auto applied = pkg::ApplyDelta(wire1, delivered);
    EXPECT_FALSE(applied.ok()) << "trial " << trial;
  }

  // The faithful hop: the patch reconstructs v2 exactly and the device
  // validates and runs it.
  Channel clean;
  auto applied = pkg::ApplyDelta(wire1, clean.Deliver(delta));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, wire2);
  auto run = device.ReceiveAndRun(*applied);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, 48);
}

TEST(DeltaChannelTest, TruncatedAndDuplicatedDeltasFailClosed) {
  const std::vector<uint8_t> base(512, 0x5A);
  std::vector<uint8_t> target = base;
  target[100] = 0xA5;
  const auto delta = pkg::EncodeDelta(base, target);
  {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kTruncate;
    cfg.truncate_bytes = 5;
    Channel channel(cfg);
    EXPECT_FALSE(pkg::ApplyDelta(base, channel.Deliver(delta)).ok());
  }
  {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kDuplicate;
    Channel channel(cfg);
    // A replayed (doubled) patch has bytes after its end op.
    EXPECT_FALSE(pkg::ApplyDelta(base, channel.Deliver(delta)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultSweepTest,
    ::testing::Values(ChannelFault::kNone, ChannelFault::kRandomBitFlips,
                      ChannelFault::kBytePatch, ChannelFault::kTruncate,
                      ChannelFault::kInstructionPatch,
                      ChannelFault::kDuplicate),
    [](const ::testing::TestParamInfo<ChannelFault>& info) {
      std::string name(ChannelFaultName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace eric::net
