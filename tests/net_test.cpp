// Channel tests + the end-to-end property: no channel fault yields
// misexecution — every delivery either runs the exact signed program or is
// rejected by the HDE.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "net/channel.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/sim_client.h"
#include "pkg/delta.h"
#include "workloads/workloads.h"

namespace eric::net {
namespace {

TEST(ChannelTest, FaithfulDeliveryByDefault) {
  Channel channel;
  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  EXPECT_EQ(channel.Deliver(bytes), bytes);
  EXPECT_EQ(channel.log().back().mutations, 0u);
}

TEST(ChannelTest, BitFlipsChangeExactlyNBits) {
  ChannelConfig config;
  config.fault = ChannelFault::kRandomBitFlips;
  config.bit_flips = 3;
  Channel channel(config);
  const std::vector<uint8_t> original(256, 0);
  const auto delivered = channel.Deliver(original);
  int flipped = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    flipped += std::popcount(static_cast<unsigned>(original[i] ^ delivered[i]));
  }
  // Flips can collide on the same bit (flip back); 3 flips => 1 or 3 bits.
  EXPECT_GE(flipped, 1);
  EXPECT_LE(flipped, 3);
}

TEST(ChannelTest, BytePatchWritesRange) {
  ChannelConfig config;
  config.fault = ChannelFault::kBytePatch;
  config.patch_offset = 4;
  config.patch_length = 3;
  config.patch_value = 0xAB;
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0));
  EXPECT_EQ(delivered[4], 0xAB);
  EXPECT_EQ(delivered[6], 0xAB);
  EXPECT_EQ(delivered[3], 0x00);
  EXPECT_EQ(delivered[7], 0x00);
}

TEST(ChannelTest, BytePatchStraddlingTailClampsAndCountsOverlap) {
  ChannelConfig config;
  config.fault = ChannelFault::kBytePatch;
  config.patch_offset = 14;  // window [14, 18) over a 16-byte body
  config.patch_length = 4;
  config.patch_value = 0xAB;
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0));
  ASSERT_EQ(delivered.size(), 16u);
  EXPECT_EQ(delivered[13], 0x00);
  EXPECT_EQ(delivered[14], 0xAB);
  EXPECT_EQ(delivered[15], 0xAB);
  // The record reports the bytes actually mutated, not the nominal window.
  EXPECT_EQ(channel.log().back().mutations, 2u);
}

TEST(ChannelTest, PatchAtOrPastTailMutatesNothing) {
  for (const ChannelFault fault :
       {ChannelFault::kBytePatch, ChannelFault::kInstructionPatch}) {
    for (const size_t offset : {size_t{16}, size_t{1000}}) {
      ChannelConfig config;
      config.fault = fault;
      config.patch_offset = offset;
      config.patch_value = 0xAB;
      Channel channel(config);
      const std::vector<uint8_t> original(16, 0);
      EXPECT_EQ(channel.Deliver(original), original)
          << ChannelFaultName(fault) << " offset " << offset;
      EXPECT_EQ(channel.log().back().mutations, 0u);
    }
  }
}

TEST(ChannelTest, PatchOffsetNearSizeMaxDoesNotWrapOntoPrefix) {
  // Regression: patch_offset + i used to be computed before the bounds
  // check, so an offset near SIZE_MAX wrapped around and patched the
  // front of the body — a mutation at an address the config never named.
  for (const ChannelFault fault :
       {ChannelFault::kBytePatch, ChannelFault::kInstructionPatch}) {
    ChannelConfig config;
    config.fault = fault;
    config.patch_offset = std::numeric_limits<size_t>::max() - 1;
    config.patch_length = 4;
    config.patch_value = 0xAB;
    Channel channel(config);
    const std::vector<uint8_t> original(16, 0);
    EXPECT_EQ(channel.Deliver(original), original) << ChannelFaultName(fault);
    EXPECT_EQ(channel.log().back().mutations, 0u);
  }
}

TEST(ChannelTest, InstructionPatchStraddlingTailClampsAndCountsOverlap) {
  ChannelConfig config;
  config.fault = ChannelFault::kInstructionPatch;
  config.patch_offset = 15;  // one byte of the 4-byte instruction fits
  Channel channel(config);
  const auto delivered = channel.Deliver(std::vector<uint8_t>(16, 0xFF));
  ASSERT_EQ(delivered.size(), 16u);
  EXPECT_EQ(delivered[14], 0xFF);
  EXPECT_EQ(delivered[15], 0x13);  // first injected byte only
  EXPECT_EQ(channel.log().back().mutations, 1u);
}

TEST(ChannelTest, TruncateDropsTail) {
  ChannelConfig config;
  config.fault = ChannelFault::kTruncate;
  config.truncate_bytes = 10;
  Channel channel(config);
  EXPECT_EQ(channel.Deliver(std::vector<uint8_t>(64, 1)).size(), 54u);
}

TEST(ChannelTest, DuplicateDoubles) {
  ChannelConfig config;
  config.fault = ChannelFault::kDuplicate;
  Channel channel(config);
  EXPECT_EQ(channel.Deliver(std::vector<uint8_t>(10, 2)).size(), 20u);
}

TEST(ChannelTest, EveryFaultHasName) {
  for (int f = 0; f <= static_cast<int>(ChannelFault::kDuplicate); ++f) {
    EXPECT_NE(ChannelFaultName(static_cast<ChannelFault>(f)), "unknown");
  }
}

TEST(ChannelTest, LogBoundedWithDropCounterAndTotals) {
  // Regression: a long-lived channel (the listen-mode daemon, soak runs)
  // must not grow its delivery log without bound. The ring keeps the
  // newest kLogCapacity records; totals() keep the full accounting.
  Channel channel;
  const size_t extra = 10;
  for (size_t i = 0; i < Channel::kLogCapacity + extra; ++i) {
    channel.Deliver({1, 2, 3});
  }
  EXPECT_EQ(channel.log().size(), Channel::kLogCapacity);
  EXPECT_EQ(channel.dropped_records(), extra);
  EXPECT_EQ(channel.totals().deliveries, Channel::kLogCapacity + extra);
  EXPECT_EQ(channel.totals().bytes_in, 3 * (Channel::kLogCapacity + extra));
  EXPECT_EQ(channel.totals().bytes_out, 3 * (Channel::kLogCapacity + extra));
  EXPECT_EQ(channel.totals().faulted, 0u);
}

TEST(ChannelTest, DuplicateOfLargeBodyIsExactConcatenation) {
  // Regression: kDuplicate used to insert the body into itself, which
  // reads from the vector being reallocated once the body is large
  // enough. The replay must be exactly body || body.
  ChannelConfig config;
  config.fault = ChannelFault::kDuplicate;
  Channel channel(config);
  std::vector<uint8_t> body(4096);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const auto delivered = channel.Deliver(body);
  ASSERT_EQ(delivered.size(), 2 * body.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(), delivered.begin()));
  EXPECT_TRUE(
      std::equal(body.begin(), body.end(), delivered.begin() + body.size()));
  EXPECT_EQ(channel.log().back().mutations, body.size());
}

// --- Frame codec ---------------------------------------------------------------

std::vector<uint8_t> TestPayload(size_t n, uint8_t salt = 0) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>(i * 13 + salt);
  }
  return payload;
}

TEST(FrameTest, RoundTrip) {
  const auto payload = TestPayload(300);
  const auto wire = EncodeFrame(FrameType::kDispatch, 42, payload);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes + payload.size());

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kDispatch);
  EXPECT_EQ(frame->seq, 42u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.frames_decoded(), 1u);
  EXPECT_EQ(decoder.resyncs(), 0u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kPing, 7, {}));
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kPing);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameTest, ByteAtATimeFeedStillDecodes) {
  const auto payload = TestPayload(65);
  const auto wire = EncodeFrame(FrameType::kDelivered, 9, payload);
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(std::span<const uint8_t>(&wire[i], 1));
    EXPECT_FALSE(decoder.Next().has_value()) << "byte " << i;
  }
  decoder.Feed(std::span<const uint8_t>(&wire.back(), 1));
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, MultipleFramesPerFeed) {
  std::vector<uint8_t> wire;
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    AppendFrame(wire, FrameType::kDispatch, seq, TestPayload(seq * 10));
  }
  FrameDecoder decoder;
  decoder.Feed(wire);
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "frame " << seq;
    EXPECT_EQ(frame->seq, seq);
    EXPECT_EQ(frame->payload.size(), seq * 10);
  }
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameTest, GarbagePrefixIsOneResyncEpisode) {
  std::vector<uint8_t> wire(37, 0xAA);  // no magic anywhere
  const auto payload = TestPayload(20);
  AppendFrame(wire, FrameType::kDispatch, 3, payload);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(decoder.resyncs(), 1u);  // one contiguous corrupt run
  EXPECT_EQ(decoder.bytes_discarded(), 37u);
}

TEST(FrameTest, CrcCorruptionRejectedThenResyncs) {
  const auto payload = TestPayload(64);
  auto corrupt = EncodeFrame(FrameType::kDispatch, 1, payload);
  corrupt[kFrameHeaderBytes + 10] ^= 0x40;  // flip one payload bit
  std::vector<uint8_t> wire = corrupt;
  const auto good = TestPayload(32, 0x5A);
  AppendFrame(wire, FrameType::kDispatch, 2, good);

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());  // the corrupt frame never surfaces
  EXPECT_EQ(frame->seq, 2u);
  EXPECT_EQ(frame->payload, good);
  EXPECT_EQ(decoder.crc_errors(), 1u);
  EXPECT_EQ(decoder.resyncs(), 1u);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(FrameTest, TornFrameCostsOnlyItsBytes) {
  // A frame whose tail never arrives (peer died mid-write) must not
  // poison the stream: the next intact frame decodes.
  auto torn = EncodeFrame(FrameType::kDispatch, 1, TestPayload(100));
  torn.resize(torn.size() - 11);  // lose part of payload + CRC
  std::vector<uint8_t> wire = torn;
  const auto good = TestPayload(40, 0x77);
  AppendFrame(wire, FrameType::kDispatch, 2, good);

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 2u);
  EXPECT_EQ(frame->payload, good);
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameTest, OversizeLengthIsCorruptionNotAllocation) {
  // A header claiming a payload beyond kMaxFramePayload must be skipped
  // as corruption, not buffered for (that is how a bad length would
  // otherwise stall the connection forever or balloon memory).
  std::vector<uint8_t> wire = {kFrameMagic0, kFrameMagic1, kFrameVersion,
                               static_cast<uint8_t>(FrameType::kDispatch),
                               0,    0,    0,    0,
                               0xFF, 0xFF, 0xFF, 0xFF};  // 4 GiB claimed
  const auto good = TestPayload(16);
  AppendFrame(wire, FrameType::kPing, 5, good);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 5u);
  EXPECT_EQ(decoder.resyncs(), 1u);
}

TEST(FrameTest, UnknownVersionAndTypeResync) {
  std::vector<uint8_t> wire;
  AppendFrame(wire, FrameType::kDispatch, 1, TestPayload(8));
  wire[2] = kFrameVersion + 1;  // future protocol version
  AppendFrame(wire, FrameType::kDispatch, 2, TestPayload(8));
  wire[wire.size() - kFrameOverheadBytes - 8 + 3] = 0x7F;  // unknown type
  const auto good = TestPayload(8, 1);
  AppendFrame(wire, FrameType::kDispatch, 3, good);

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 3u);
  EXPECT_EQ(frame->payload, good);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
  // The two bad frames are contiguous, so they fold into one resync
  // episode; every one of their bytes is accounted discarded.
  EXPECT_EQ(decoder.resyncs(), 1u);
  EXPECT_EQ(decoder.bytes_discarded(), 2 * (kFrameOverheadBytes + 8));
}

// --- Socket transport ----------------------------------------------------------

/// Server + simulated device fleet over real loopback sockets.
struct WireRig {
  explicit WireRig(std::vector<uint64_t> devices,
                   FleetServerConfig server_config = {},
                   SimClientFleetConfig client_config = {})
      : server(server_config) {
    EXPECT_TRUE(server.Start().ok());
    client_config.port = server.port();
    client_config.devices = devices;
    clients = std::make_unique<SimClientFleet>(std::move(client_config));
    EXPECT_TRUE(clients->Start().ok());
    ready = server.WaitForDevices(devices.size(), 10'000);
    EXPECT_TRUE(ready);
  }

  FleetServer server;
  std::unique_ptr<SimClientFleet> clients;
  bool ready = false;
};

TEST(TransportTest, HandshakeAndFaithfulDelivery) {
  WireRig rig({1, 2, 3});
  ASSERT_TRUE(rig.ready);
  EXPECT_EQ(rig.server.connected_devices(), 3u);

  const auto payload = TestPayload(4096);
  for (uint64_t device : {1u, 2u, 3u}) {
    auto delivered = rig.server.Deliver(device, payload, ChannelConfig{});
    ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
    EXPECT_EQ(*delivered, payload);
  }
  EXPECT_EQ(rig.clients->dispatches_served(), 3u);
}

TEST(TransportTest, EveryChannelFaultReproducesOnTheWire) {
  // The wire path applies the same per-delivery fault process as the
  // in-process channel: for every fault mode and seed, the bytes coming
  // back over the socket must equal a local Channel's output bit for
  // bit. This is what keeps campaign fault injection deterministic in
  // the campaign seed regardless of transport.
  WireRig rig({7});
  ASSERT_TRUE(rig.ready);
  const auto payload = TestPayload(2048);
  for (int f = 0; f <= static_cast<int>(ChannelFault::kDuplicate); ++f) {
    for (uint64_t trial = 0; trial < 3; ++trial) {
      ChannelConfig cfg;
      cfg.fault = static_cast<ChannelFault>(f);
      cfg.seed = 0x9000 + trial;
      cfg.bit_flips = 2 + static_cast<uint32_t>(trial);
      cfg.patch_offset = 100 + trial * 13;
      cfg.truncate_bytes = 5 + trial;
      Channel local(cfg);
      const auto expected = local.Deliver(payload);
      auto wired = rig.server.Deliver(7, payload, cfg);
      ASSERT_TRUE(wired.ok()) << wired.status().ToString();
      EXPECT_EQ(*wired, expected)
          << ChannelFaultName(cfg.fault) << " trial " << trial;
    }
  }
}

TEST(TransportTest, FaultedSealedPackageRejectedEndToEnd) {
  // The full paper property, over a real socket: a sealed package that
  // suffers wire faults either arrives intact or is rejected by the
  // HDE — never executed modified.
  const auto* workload = workloads::FindWorkload("bitcount");
  ASSERT_NE(workload, nullptr);
  crypto::KeyConfig config;
  core::TrustedDevice device(0x5EED, config);
  core::SoftwareSource source(device.Enroll(), config);
  auto built = source.CompileAndPackage(
      workload->source, core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  WireRig rig({11});
  ASSERT_TRUE(rig.ready);
  int rejected = 0;
  for (uint64_t trial = 0; trial < 8; ++trial) {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kRandomBitFlips;
    cfg.bit_flips = 1 + static_cast<uint32_t>(trial % 4);
    cfg.seed = 0xA100 + trial;
    auto delivered = rig.server.Deliver(11, wire, cfg);
    ASSERT_TRUE(delivered.ok());
    auto run = device.ReceiveAndRun(*delivered);
    if (run.ok()) {
      EXPECT_EQ(run->exec.exit_code, workload->reference())
          << "trial " << trial << ": EXECUTED A MODIFIED PROGRAM";
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 8);  // bit flips never survive HDE validation

  auto clean = rig.server.Deliver(11, wire, ChannelConfig{});
  ASSERT_TRUE(clean.ok());
  auto run = device.ReceiveAndRun(*clean);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, workload->reference());
}

TEST(TransportTest, UnknownDeviceIsUnavailable) {
  WireRig rig({1});
  ASSERT_TRUE(rig.ready);
  auto delivered = rig.server.Deliver(999, TestPayload(16), ChannelConfig{});
  ASSERT_FALSE(delivered.ok());
  EXPECT_EQ(delivered.status().code(), ErrorCode::kUnavailable);
}

TEST(TransportTest, ResponseTimeoutExpires) {
  FleetServerConfig server_config;
  server_config.response_timeout_ms = 200;
  SimClientFleetConfig client_config;
  client_config.respond = false;  // black-hole every dispatch
  WireRig rig({4}, server_config, client_config);
  ASSERT_TRUE(rig.ready);

  const auto start = std::chrono::steady_clock::now();
  auto delivered = rig.server.Deliver(4, TestPayload(64), ChannelConfig{});
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(delivered.ok());
  EXPECT_EQ(delivered.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(waited, std::chrono::milliseconds(150));
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(TransportTest, BackpressureFailsResourceExhausted) {
  // A device that stops reading after the handshake backs the write
  // queue up past the high-water mark; once a delivery has stalled past
  // the backpressure deadline it fails kResourceExhausted instead of
  // wedging the worker forever.
  FleetServerConfig server_config;
  server_config.response_timeout_ms = 300;
  server_config.write_high_water = 64 * 1024;
  server_config.backpressure_timeout_ms = 300;
  SimClientFleetConfig client_config;
  client_config.read_after_handshake = false;
  WireRig rig({6}, server_config, client_config);
  ASSERT_TRUE(rig.ready);

  // Large payloads: the first few fill the socket buffer + write queue
  // (each times out on the unread response); eventually a Deliver finds
  // the queue at high water and fails with kResourceExhausted.
  bool saw_backpressure = false;
  for (int i = 0; i < 32 && !saw_backpressure; ++i) {
    auto delivered =
        rig.server.Deliver(6, TestPayload(256 * 1024), ChannelConfig{});
    ASSERT_FALSE(delivered.ok());
    if (delivered.status().code() == ErrorCode::kResourceExhausted) {
      saw_backpressure = true;
    } else {
      EXPECT_EQ(delivered.status().code(), ErrorCode::kTimeout);
    }
  }
  EXPECT_TRUE(saw_backpressure);
}

TEST(TransportTest, DisconnectFailsInflightDelivery) {
  FleetServerConfig server_config;
  server_config.response_timeout_ms = 30'000;  // the close must win
  SimClientFleetConfig client_config;
  client_config.respond = false;
  WireRig rig({8}, server_config, client_config);
  ASSERT_TRUE(rig.ready);

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    rig.clients->Stop();  // device vanishes mid-request
  });
  auto delivered = rig.server.Deliver(8, TestPayload(64), ChannelConfig{});
  killer.join();
  ASSERT_FALSE(delivered.ok());
  EXPECT_EQ(delivered.status().code(), ErrorCode::kUnavailable);
}

TEST(TransportTest, ManyConnectionsConcurrentDeliveries) {
  std::vector<uint64_t> devices;
  for (uint64_t d = 1; d <= 128; ++d) devices.push_back(d);
  WireRig rig(devices);
  ASSERT_TRUE(rig.ready);
  EXPECT_EQ(rig.server.connected_devices(), devices.size());

  const auto payload = TestPayload(1024);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = static_cast<size_t>(w); i < devices.size(); i += 8) {
        auto delivered =
            rig.server.Deliver(devices[i], payload, ChannelConfig{});
        if (!delivered.ok() || *delivered != payload) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rig.clients->dispatches_served(), devices.size());
}

TEST(TransportTest, IdleConnectionsReaped) {
  FleetServerConfig server_config;
  server_config.idle_timeout_ms = 150;
  WireRig rig({21, 22}, server_config);
  ASSERT_TRUE(rig.ready);
  EXPECT_EQ(rig.server.connected_devices(), 2u);

  // No traffic: the reaper must close both within a few timeouts.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.server.connected_devices() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rig.server.connected_devices(), 0u);
}

// --- End-to-end integrity property --------------------------------------------

class FaultSweepTest : public ::testing::TestWithParam<ChannelFault> {};

TEST_P(FaultSweepTest, NoFaultCausesMisexecution) {
  const auto* workload = workloads::FindWorkload("bitcount");
  ASSERT_NE(workload, nullptr);
  const int64_t expected = workload->reference();

  crypto::KeyConfig config;
  core::TrustedDevice device(0x5EED, config);
  core::SoftwareSource source(device.Enroll(), config);
  auto built = source.CompileAndPackage(workload->source,
                                        core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  // Sweep many channel instances of this fault class (different seeds /
  // offsets); every delivery must either run correctly or be rejected.
  int accepted = 0, rejected = 0;
  for (uint64_t trial = 0; trial < 25; ++trial) {
    ChannelConfig cfg;
    cfg.fault = GetParam();
    cfg.seed = 0x1000 + trial;
    cfg.bit_flips = 1 + static_cast<uint32_t>(trial % 4);
    cfg.patch_offset = 36 + trial * 7;  // walk through the body
    cfg.truncate_bytes = 1 + trial;
    Channel channel(cfg);
    const auto delivered = channel.Deliver(wire);
    auto run = device.ReceiveAndRun(delivered);
    if (run.ok()) {
      ++accepted;
      EXPECT_EQ(run->exec.exit_code, expected)
          << ChannelFaultName(GetParam()) << " trial " << trial
          << ": EXECUTED A MODIFIED PROGRAM";
    } else {
      ++rejected;
    }
  }
  if (GetParam() == ChannelFault::kNone) {
    EXPECT_EQ(accepted, 25);
  } else {
    // Every mutating fault must be caught every time (mutations == 0 can
    // happen only for kNone).
    EXPECT_EQ(accepted, 0) << ChannelFaultName(GetParam());
    EXPECT_EQ(rejected, 25);
  }
}

// --- Delta payloads over the hostile channel ----------------------------------

TEST(DeltaChannelTest, CorruptedDeltaPayloadFailsClosed) {
  // Seal two releases of one program for the same device, diff their
  // wire images, and push the patch through a byte-patching channel: the
  // device-side ApplyDelta must reject every corrupted delivery, and a
  // faithful delivery must reconstruct — and run — the exact v2 image.
  constexpr const char* kV1 = R"(
    fn main() { var x = 6; return x * 7; }
  )";
  constexpr const char* kV2 = R"(
    fn main() { var x = 6; return x * 8; }
  )";
  crypto::KeyConfig config;
  core::TrustedDevice device(0xDE17A, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto policy = core::EncryptionPolicy::PartialRandom(0.5);
  auto v1 = source.CompileAndPackage(kV1, policy);
  auto v2 = source.CompileAndPackage(kV2, policy);
  ASSERT_TRUE(v1.ok() && v2.ok());
  const auto wire1 = pkg::Serialize(v1->packaging.package);
  const auto wire2 = pkg::Serialize(v2->packaging.package);
  const auto delta = pkg::EncodeDelta(wire1, wire2);

  // The attacked hop: every byte-patched delivery is rejected by the
  // patch CRCs before anything reaches the HDE.
  for (uint64_t trial = 0; trial < 25; ++trial) {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kBytePatch;
    cfg.seed = 0x2000 + trial;
    cfg.patch_offset = trial * 3 % delta.size();
    Channel channel(cfg);
    const auto delivered = channel.Deliver(delta);
    if (delivered == delta) continue;  // patch wrote identical bytes
    auto applied = pkg::ApplyDelta(wire1, delivered);
    EXPECT_FALSE(applied.ok()) << "trial " << trial;
  }

  // The faithful hop: the patch reconstructs v2 exactly and the device
  // validates and runs it.
  Channel clean;
  auto applied = pkg::ApplyDelta(wire1, clean.Deliver(delta));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, wire2);
  auto run = device.ReceiveAndRun(*applied);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, 48);
}

TEST(DeltaChannelTest, TruncatedAndDuplicatedDeltasFailClosed) {
  const std::vector<uint8_t> base(512, 0x5A);
  std::vector<uint8_t> target = base;
  target[100] = 0xA5;
  const auto delta = pkg::EncodeDelta(base, target);
  {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kTruncate;
    cfg.truncate_bytes = 5;
    Channel channel(cfg);
    EXPECT_FALSE(pkg::ApplyDelta(base, channel.Deliver(delta)).ok());
  }
  {
    ChannelConfig cfg;
    cfg.fault = ChannelFault::kDuplicate;
    Channel channel(cfg);
    // A replayed (doubled) patch has bytes after its end op.
    EXPECT_FALSE(pkg::ApplyDelta(base, channel.Deliver(delta)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultSweepTest,
    ::testing::Values(ChannelFault::kNone, ChannelFault::kRandomBitFlips,
                      ChannelFault::kBytePatch, ChannelFault::kTruncate,
                      ChannelFault::kInstructionPatch,
                      ChannelFault::kDuplicate),
    [](const ::testing::TestParamInfo<ChannelFault>& info) {
      std::string name(ChannelFaultName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace eric::net
