// Workload suite tests: every kernel must compile, run on the simulator,
// and agree with its independent native C++ reference — and must survive
// the full ERIC pipeline unchanged.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "sim/soc.h"
#include "workloads/workloads.h"

namespace eric::workloads {
namespace {

class WorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadTest, SimulatorMatchesNativeReference) {
  const Workload& w = GetParam();
  auto compiled = compiler::Compile(w.source);
  ASSERT_TRUE(compiled.ok()) << w.name << ": " << compiled.status().ToString();
  sim::Soc soc;
  soc.LoadProgram(compiled->program.image);
  const sim::ExecStats stats = soc.Run();
  ASSERT_EQ(stats.halt_reason, sim::HaltReason::kExit) << w.name;
  EXPECT_EQ(stats.exit_code, w.reference()) << w.name;
}

TEST_P(WorkloadTest, SurvivesFullEricPipeline) {
  const Workload& w = GetParam();
  crypto::KeyConfig config;
  core::TrustedDevice device(0xDE5EED, config);
  core::SoftwareSource source(device.Enroll(), config);
  auto built = source.CompileAndPackage(w.source,
                                        core::EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok()) << w.name << ": " << built.status().ToString();
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_TRUE(run.ok()) << w.name << ": " << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, w.reference()) << w.name;
}

TEST_P(WorkloadTest, UnoptimizedBuildAgrees) {
  const Workload& w = GetParam();
  compiler::CompileOptions options;
  options.optimize = false;
  auto compiled = compiler::Compile(w.source, options);
  ASSERT_TRUE(compiled.ok()) << w.name;
  sim::Soc soc;
  soc.LoadProgram(compiled->program.image);
  const sim::ExecStats stats = soc.Run();
  EXPECT_EQ(stats.exit_code, w.reference()) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadTest, ::testing::ValuesIn(AllWorkloads()),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return info.param.name;
    });

TEST(WorkloadSuiteTest, NineKernelsPresent) {
  EXPECT_EQ(AllWorkloads().size(), 9u);
}

TEST(WorkloadSuiteTest, FindByName) {
  EXPECT_NE(FindWorkload("qsort"), nullptr);
  EXPECT_NE(FindWorkload("dijkstra"), nullptr);
  EXPECT_EQ(FindWorkload("doom"), nullptr);
}

TEST(WorkloadSuiteTest, SizesSpanARange) {
  // The paper stresses using programs of different sizes; the suite's
  // static sizes must span at least a 3x range.
  size_t smallest = SIZE_MAX, largest = 0;
  for (const Workload& w : AllWorkloads()) {
    auto compiled = compiler::Compile(w.source);
    ASSERT_TRUE(compiled.ok()) << w.name;
    smallest = std::min(smallest, compiled->program.text_bytes);
    largest = std::max(largest, compiled->program.text_bytes);
  }
  EXPECT_GE(largest, smallest * 3);
}

TEST(WorkloadSuiteTest, CompressedFractionRealistic) {
  // rv64gc code typically has a sizable RVC share; our backend should see
  // one too (this drives the Fig 5 "1 bit per 16 bits" effect).
  for (const Workload& w : AllWorkloads()) {
    auto compiled = compiler::Compile(w.source);
    ASSERT_TRUE(compiled.ok());
    EXPECT_GT(compiled->program.stats.compressed_fraction(), 0.15) << w.name;
    EXPECT_LT(compiled->program.stats.compressed_fraction(), 0.95) << w.name;
  }
}

}  // namespace
}  // namespace eric::workloads
