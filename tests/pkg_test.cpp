// Package wire-format tests: serialization, parsing, structural
// validation, and size accounting.
#include <gtest/gtest.h>

#include "pkg/package.h"
#include "support/rng.h"

namespace eric::pkg {
namespace {

Package SamplePackage(EncryptionMode mode) {
  Package p;
  p.mode = mode;
  p.instr_count = 10;
  p.key_epoch = 3;
  p.text.resize(44);
  for (size_t i = 0; i < p.text.size(); ++i) {
    p.text[i] = static_cast<uint8_t>(i * 7);
  }
  if (mode == EncryptionMode::kPartial || mode == EncryptionMode::kField) {
    p.encryption_map = BitVector(10);
    p.encryption_map.Set(2, true);
    p.encryption_map.Set(9, true);
  }
  if (mode == EncryptionMode::kField) {
    p.field_specs.push_back(FieldSpec{4, 20, 31});
  }
  for (size_t i = 0; i < p.signature.size(); ++i) {
    p.signature[i] = static_cast<uint8_t>(0xA0 + i);
  }
  return p;
}

class ModeRoundtripTest : public ::testing::TestWithParam<EncryptionMode> {};

TEST_P(ModeRoundtripTest, SerializeParseRoundtrip) {
  const Package original = SamplePackage(GetParam());
  const auto wire = Serialize(original);
  EXPECT_EQ(wire.size(), original.WireSize());
  auto parsed = Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->mode, original.mode);
  EXPECT_EQ(parsed->instr_count, original.instr_count);
  EXPECT_EQ(parsed->key_epoch, original.key_epoch);
  EXPECT_EQ(parsed->text, original.text);
  EXPECT_EQ(parsed->signature, original.signature);
  if (GetParam() == EncryptionMode::kPartial ||
      GetParam() == EncryptionMode::kField) {
    EXPECT_EQ(parsed->encryption_map, original.encryption_map);
  }
  if (GetParam() == EncryptionMode::kField) {
    ASSERT_EQ(parsed->field_specs.size(), 1u);
    EXPECT_EQ(parsed->field_specs[0].bit_lo, 20);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeRoundtripTest,
                         ::testing::Values(EncryptionMode::kNone,
                                           EncryptionMode::kFull,
                                           EncryptionMode::kPartial,
                                           EncryptionMode::kField),
                         [](const auto& info) {
                           return std::string(
                               EncryptionModeName(info.param));
                         });

TEST(ParseTest, RejectsBadMagic) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire[0] = 'X';
  EXPECT_EQ(Parse(wire).status().code(), ErrorCode::kCorruptPackage);
}

TEST(ParseTest, RejectsBadVersion) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire[8] = 99;
  EXPECT_EQ(Parse(wire).status().code(), ErrorCode::kCorruptPackage);
}

TEST(ParseTest, RejectsBadMode) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire[12] = 77;
  EXPECT_EQ(Parse(wire).status().code(), ErrorCode::kCorruptPackage);
}

TEST(ParseTest, RejectsShortHeader) {
  EXPECT_EQ(Parse(std::vector<uint8_t>(10, 0)).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(ParseTest, RejectsTruncatedText) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire.resize(wire.size() - 40);  // removes signature + some text
  EXPECT_FALSE(Parse(wire).ok());
}

TEST(ParseTest, RejectsTrailingGarbage) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire.push_back(0);
  EXPECT_FALSE(Parse(wire).ok());
}

TEST(ParseTest, RejectsFieldSpecsWithoutFieldMode) {
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire[24] = 1;  // field_spec_count = 1 but mode = full
  EXPECT_FALSE(Parse(wire).ok());
}

TEST(ParseTest, RejectsBadFieldSpecRange) {
  Package p = SamplePackage(EncryptionMode::kField);
  p.field_specs[0].bit_lo = 30;
  p.field_specs[0].bit_hi = 20;  // inverted
  EXPECT_FALSE(Parse(Serialize(p)).ok());
}

TEST(ParseTest, FuzzNeverCrashes) {
  // Random buffers and mutated valid packages must never crash Parse.
  Xoshiro256 rng(99);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> junk(rng.NextBounded(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    (void)Parse(junk);
  }
  const auto wire = Serialize(SamplePackage(EncryptionMode::kPartial));
  for (int i = 0; i < 300; ++i) {
    auto mutated = wire;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<uint8_t>(rng.Next());
    (void)Parse(mutated);
  }
  SUCCEED();
}

TEST(SizeTest, BreakdownSumsToWireSize) {
  for (EncryptionMode mode :
       {EncryptionMode::kNone, EncryptionMode::kFull, EncryptionMode::kPartial,
        EncryptionMode::kField}) {
    const Package p = SamplePackage(mode);
    EXPECT_EQ(BreakdownOf(p).total(), Serialize(p).size())
        << EncryptionModeName(mode);
  }
}

TEST(SizeTest, MapOmittedForFullEncryption) {
  EXPECT_EQ(BreakdownOf(SamplePackage(EncryptionMode::kFull)).map_bytes, 0u);
  EXPECT_EQ(BreakdownOf(SamplePackage(EncryptionMode::kPartial)).map_bytes,
            2u);  // ceil(10/8)
}

TEST(ModeNameTest, AllNamed) {
  EXPECT_EQ(EncryptionModeName(EncryptionMode::kNone), "none");
  EXPECT_EQ(EncryptionModeName(EncryptionMode::kFull), "full");
  EXPECT_EQ(EncryptionModeName(EncryptionMode::kPartial), "partial");
  EXPECT_EQ(EncryptionModeName(EncryptionMode::kField), "field");
}

// --- Target ISA in the header flags word ------------------------------------

TEST(IsaWireTest, IsaRoundtripsThroughFlagsByte) {
  Package p = SamplePackage(EncryptionMode::kFull);
  p.isa = isa::IsaId::kRv32I;
  const auto wire = Serialize(p);
  // The ISA travels in byte 1 of the little-endian flags word at
  // offset 12 (byte 0 carries the mode).
  EXPECT_EQ(wire[13], 1);
  auto parsed = Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->isa, isa::IsaId::kRv32I);
}

TEST(IsaWireTest, ZeroIsaByteParsesAsRv64Gc) {
  // Packages serialized before the ISA field existed carry zero in
  // flags byte 1 and must keep parsing as the original target.
  const auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  EXPECT_EQ(wire[13], 0);
  auto parsed = Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->isa, isa::IsaId::kRv64Gc);
}

TEST(IsaWireTest, RejectsUnknownIsaByte) {
  // A flags byte no backend claims must fail closed, never default.
  auto wire = Serialize(SamplePackage(EncryptionMode::kFull));
  wire[13] = 7;
  EXPECT_EQ(Parse(wire).status().code(), ErrorCode::kCorruptPackage);
}

}  // namespace
}  // namespace eric::pkg
