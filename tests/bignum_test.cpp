// Bignum + RSA tests: arithmetic identities (property-style against
// 64-bit oracles), known vectors, primality, and key wrapping.
#include <gtest/gtest.h>

#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "support/rng.h"

namespace eric::crypto {
namespace {

TEST(BigNumTest, ZeroBasics) {
  BigNum zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0);
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_TRUE(zero.ToBytes().empty());
}

TEST(BigNumTest, FromUint64) {
  EXPECT_EQ(BigNum(0x1234).ToHex(), "1234");
  EXPECT_EQ(BigNum(0xDEADBEEFCAFEBABEull).ToHex(), "deadbeefcafebabe");
  EXPECT_EQ(BigNum(1).BitLength(), 1);
  EXPECT_EQ(BigNum(255).BitLength(), 8);
  EXPECT_EQ(BigNum(256).BitLength(), 9);
}

TEST(BigNumTest, HexRoundtrip) {
  const char* kHex = "f123456789abcdef0011223344556677deadbeef";
  auto n = BigNum::FromHex(kHex);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->ToHex(), kHex);
}

TEST(BigNumTest, BytesRoundtrip) {
  std::vector<uint8_t> bytes = {0x01, 0x02, 0x03, 0xFF, 0x00, 0x80};
  const BigNum n = BigNum::FromBytes(bytes);
  EXPECT_EQ(n.ToBytes(), bytes);
}

TEST(BigNumTest, FromHexRejectsJunk) {
  EXPECT_FALSE(BigNum::FromHex("12g4").ok());
}

TEST(BigNumTest, CompareOrdering) {
  EXPECT_LT(BigNum::Compare(BigNum(3), BigNum(5)), 0);
  EXPECT_GT(BigNum::Compare(BigNum(5), BigNum(3)), 0);
  EXPECT_EQ(BigNum::Compare(BigNum(5), BigNum(5)), 0);
  auto big = BigNum::FromHex("100000000000000000000");
  ASSERT_TRUE(big.ok());
  EXPECT_LT(BigNum::Compare(BigNum(UINT64_MAX), *big), 0);
}

// Property: arithmetic agrees with native 64-bit math on random values
// small enough not to overflow.
TEST(BigNumTest, ArithmeticAgainstNativeOracle) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t a = rng.Next() >> 33;  // 31-bit values
    const uint64_t b = (rng.Next() >> 33) + 1;
    EXPECT_EQ(BigNum::Add(BigNum(a), BigNum(b)), BigNum(a + b));
    if (a >= b) {
      EXPECT_EQ(BigNum::Sub(BigNum(a), BigNum(b)), BigNum(a - b));
    }
    EXPECT_EQ(BigNum::Mul(BigNum(a), BigNum(b)), BigNum(a * b));
    auto dm = BigNum::Div(BigNum(a), BigNum(b));
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient, BigNum(a / b));
    EXPECT_EQ(dm->remainder, BigNum(a % b));
  }
}

// Property: (a+b)-b == a, a*b/b == a, ((a*b)+r) div b == (a, r) for big
// random operands.
TEST(BigNumTest, AlgebraicIdentitiesAtWidth) {
  Xoshiro256 rng(78);
  for (int trial = 0; trial < 50; ++trial) {
    const BigNum a = BigNum::Random(200, rng);
    const BigNum b = BigNum::Random(130, rng);
    EXPECT_EQ(BigNum::Sub(BigNum::Add(a, b), b), a);
    auto dm = BigNum::Div(BigNum::Mul(a, b), b);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient, a);
    EXPECT_TRUE(dm->remainder.IsZero());
    // With remainder:
    const BigNum r = BigNum::Random(100, rng);  // < b (130 bits)
    auto dm2 = BigNum::Div(BigNum::Add(BigNum::Mul(a, b), r), b);
    ASSERT_TRUE(dm2.ok());
    EXPECT_EQ(dm2->quotient, a);
    EXPECT_EQ(dm2->remainder, r);
  }
}

TEST(BigNumTest, DivByZeroFails) {
  EXPECT_FALSE(BigNum::Div(BigNum(5), BigNum()).ok());
  EXPECT_FALSE(BigNum::Mod(BigNum(5), BigNum()).ok());
}

TEST(BigNumTest, ModPowKnownValues) {
  // 2^10 mod 1000 = 24
  auto r = BigNum::ModPow(BigNum(2), BigNum(10), BigNum(1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, BigNum(24));
  // Fermat: a^(p-1) mod p == 1 for prime p = 1000003.
  auto f = BigNum::ModPow(BigNum(12345), BigNum(1000002), BigNum(1000003));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, BigNum(1));
}

TEST(BigNumTest, ModPowMatchesNativeOracle) {
  Xoshiro256 rng(79);
  auto native_modpow = [](uint64_t base, uint64_t exp, uint64_t mod) {
    unsigned __int128 result = 1, b = base % mod;
    while (exp != 0) {
      if (exp & 1) result = result * b % mod;
      b = b * b % mod;
      exp >>= 1;
    }
    return static_cast<uint64_t>(result);
  };
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t base = rng.Next() >> 40;
    const uint64_t exp = rng.Next() >> 48;
    const uint64_t mod = (rng.Next() >> 40) + 2;
    auto r = BigNum::ModPow(BigNum(base), BigNum(exp), BigNum(mod));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, BigNum(native_modpow(base, exp, mod)))
        << base << "^" << exp << " mod " << mod;
  }
}

TEST(BigNumTest, GcdKnownValues) {
  EXPECT_EQ(BigNum::Gcd(BigNum(48), BigNum(36)), BigNum(12));
  EXPECT_EQ(BigNum::Gcd(BigNum(17), BigNum(5)), BigNum(1));
  EXPECT_EQ(BigNum::Gcd(BigNum(0), BigNum(7)), BigNum(7));
}

TEST(BigNumTest, ModInverse) {
  // 3 * 7 = 21 == 1 mod 10.
  auto inv = BigNum::ModInverse(BigNum(3), BigNum(10));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, BigNum(7));
  // Non-invertible.
  EXPECT_FALSE(BigNum::ModInverse(BigNum(4), BigNum(10)).ok());
}

TEST(BigNumTest, ModInverseProperty) {
  Xoshiro256 rng(80);
  const BigNum m = BigNum::RandomPrime(64, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const BigNum a = BigNum::Random(60, rng);
    auto inv = BigNum::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    auto product = BigNum::Mod(BigNum::Mul(a, *inv), m);
    ASSERT_TRUE(product.ok());
    EXPECT_EQ(*product, BigNum(1));
  }
}

TEST(PrimalityTest, SmallKnownValues) {
  Xoshiro256 rng(81);
  const uint64_t primes[] = {2, 3, 5, 7, 61, 97, 1000003, 2147483647};
  const uint64_t composites[] = {1, 4, 9, 15, 91, 561 /*Carmichael*/,
                                 1000001, 4294967297ull /*641*6700417*/};
  for (uint64_t p : primes) {
    EXPECT_TRUE(BigNum::IsProbablePrime(BigNum(p), rng)) << p;
  }
  for (uint64_t c : composites) {
    EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(c), rng)) << c;
  }
}

TEST(PrimalityTest, RandomPrimeHasRequestedSize) {
  Xoshiro256 rng(82);
  const BigNum p = BigNum::RandomPrime(96, rng);
  EXPECT_EQ(p.BitLength(), 96);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(BigNum::IsProbablePrime(p, rng));
}

// --- RSA ---------------------------------------------------------------------

TEST(RsaTest, GenerateAndWrapUnwrap) {
  Xoshiro256 rng(83);
  auto keypair = RsaKeyPair::Generate(512, rng);
  ASSERT_TRUE(keypair.ok()) << keypair.status().ToString();
  EXPECT_EQ(keypair->public_key.n.BitLength(), 512);

  Key256 key;
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(3 * i);
  auto wrapped = RsaWrapKey(keypair->public_key, key, rng);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();
  EXPECT_EQ(wrapped->size(), 64u);  // modulus bytes

  auto unwrapped = RsaUnwrapKey(*keypair, *wrapped);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status().ToString();
  EXPECT_EQ(*unwrapped, key);
}

TEST(RsaTest, WrapIsRandomized) {
  Xoshiro256 rng(84);
  auto keypair = RsaKeyPair::Generate(512, rng);
  ASSERT_TRUE(keypair.ok());
  Key256 key{};
  auto w1 = RsaWrapKey(keypair->public_key, key, rng);
  auto w2 = RsaWrapKey(keypair->public_key, key, rng);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_NE(*w1, *w2);  // random padding
  EXPECT_EQ(*RsaUnwrapKey(*keypair, *w1), *RsaUnwrapKey(*keypair, *w2));
}

TEST(RsaTest, TamperedBlobFailsPadding) {
  Xoshiro256 rng(85);
  auto keypair = RsaKeyPair::Generate(512, rng);
  ASSERT_TRUE(keypair.ok());
  Key256 key{};
  key.fill(0x5A);
  auto wrapped = RsaWrapKey(keypair->public_key, key, rng);
  ASSERT_TRUE(wrapped.ok());
  // Flip bits across several trials: unwrap must fail padding or return a
  // different key — never silently the correct key.
  int clean_failures = 0;
  for (size_t i = 0; i < 16; ++i) {
    auto tampered = *wrapped;
    tampered[i * 3 % tampered.size()] ^= 0x40;
    auto unwrapped = RsaUnwrapKey(*keypair, tampered);
    if (!unwrapped.ok()) {
      ++clean_failures;
    } else {
      EXPECT_NE(*unwrapped, key) << "tamper " << i;
    }
  }
  EXPECT_GT(clean_failures, 8);  // most tampering breaks the padding
}

TEST(RsaTest, WrongKeyCannotUnwrap) {
  Xoshiro256 rng(86);
  auto alice = RsaKeyPair::Generate(512, rng);
  auto mallory = RsaKeyPair::Generate(512, rng);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(mallory.ok());
  Key256 key{};
  key.fill(0x77);
  auto wrapped = RsaWrapKey(alice->public_key, key, rng);
  ASSERT_TRUE(wrapped.ok());
  auto stolen = RsaUnwrapKey(*mallory, *wrapped);
  if (stolen.ok()) {
    EXPECT_NE(*stolen, key);
  }
}

TEST(RsaTest, RejectsTinyModulus) {
  Xoshiro256 rng(87);
  EXPECT_FALSE(RsaKeyPair::Generate(64, rng).ok());
  EXPECT_FALSE(RsaKeyPair::Generate(513, rng).ok());  // odd
  // A 128-bit modulus generates but cannot wrap a 256-bit key.
  auto tiny = RsaKeyPair::Generate(128, rng);
  ASSERT_TRUE(tiny.ok());
  Key256 key{};
  EXPECT_FALSE(RsaWrapKey(tiny->public_key, key, rng).ok());
}

}  // namespace
}  // namespace eric::crypto
