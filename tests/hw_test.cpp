// Resource-model tests: primitive cost sanity and Table II bands.
#include <gtest/gtest.h>

#include "hw/resource_model.h"

namespace eric::hw {
namespace {

using namespace primitives;

TEST(PrimitiveTest, RegisterIsOneFfPerBit) {
  EXPECT_EQ(Register(64).flip_flops, 64u);
  EXPECT_EQ(Register(64).luts, 0u);
}

TEST(PrimitiveTest, XorLanePacksTwoBitsPerLut) {
  EXPECT_EQ(XorLane(64).luts, 32u);
  EXPECT_EQ(XorLane(1).luts, 1u);
}

TEST(PrimitiveTest, AdderUsesCarryChain) {
  EXPECT_EQ(Adder(32).luts, 32u);
}

TEST(PrimitiveTest, ComparatorHasResultFf) {
  const Resources r = Comparator(32);
  EXPECT_EQ(r.flip_flops, 1u);
  EXPECT_GT(r.luts, 8u);
}

TEST(PrimitiveTest, MuxGrowsWithWays) {
  EXPECT_LT(Mux(32, 2).luts, Mux(32, 16).luts);
}

TEST(PrimitiveTest, FsmStateBits) {
  EXPECT_EQ(Fsm(4, 0).flip_flops, 2u);
  EXPECT_EQ(Fsm(5, 0).flip_flops, 3u);
}

TEST(PrimitiveTest, LutRamByCapacity) {
  EXPECT_EQ(LutRam(64, 4).luts, 4u);
  EXPECT_EQ(LutRam(16, 32).luts, 8u);
}

TEST(NetlistTest, AllFiveUnitsPlusInterconnect) {
  const auto units = HdeNetlist();
  ASSERT_EQ(units.size(), 6u);
  EXPECT_EQ(units[0].name, "PUF Key Generator");
  EXPECT_EQ(units[3].name, "Signature Generator");
  for (const auto& unit : units) {
    EXPECT_GT(unit.resources.luts + unit.resources.flip_flops, 0u)
        << unit.name;
  }
}

TEST(NetlistTest, TotalsMatchSumOfUnits) {
  Resources sum;
  for (const auto& unit : HdeNetlist()) sum += unit.resources;
  const Resources total = HdeTotal();
  EXPECT_EQ(total.luts, sum.luts);
  EXPECT_EQ(total.flip_flops, sum.flip_flops);
}

TEST(Table2Test, OverheadInPaperBand) {
  // Paper: +2.63 % LUTs, +3.83 % FFs. The structural model must land in
  // the same band (within one percentage point) for the reproduction to
  // hold.
  const Resources hde = HdeTotal();
  const double lut_pct = 100.0 * hde.luts / kRocketBaseline.luts;
  const double ff_pct = 100.0 * hde.flip_flops / kRocketBaseline.flip_flops;
  EXPECT_NEAR(lut_pct, 2.63, 1.0);
  EXPECT_NEAR(ff_pct, 3.83, 1.0);
}

TEST(Table2Test, HdeIsSmallVersusCore) {
  const Resources hde = HdeTotal();
  EXPECT_LT(hde.luts, kRocketBaseline.luts / 10);
  EXPECT_LT(hde.flip_flops, kRocketBaseline.flip_flops / 10);
}

TEST(Table2Test, FormatContainsAllRows) {
  const std::string table = FormatTable2();
  EXPECT_NE(table.find("Total Slice LUTs"), std::string::npos);
  EXPECT_NE(table.find("Total Flip-Flops"), std::string::npos);
  EXPECT_NE(table.find("Decryption Unit"), std::string::npos);
  EXPECT_NE(table.find("Validation Unit"), std::string::npos);
  EXPECT_NE(table.find("PUF Key Generator"), std::string::npos);
}

}  // namespace
}  // namespace eric::hw
