// Durable-store tests: WAL framing and recovery (CRC rejection, torn-tail
// truncation, group commit under concurrency), atomic snapshots with
// fallback, registry persistence (crash-restart reconstruction, WAL
// compaction, configuration fingerprints), and campaign-journal resume
// with the exactly-once property across a simulated crash.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "fleet/campaign_journal.h"
#include "fleet/deployment_engine.h"
#include "store/record_io.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace eric {
namespace {

namespace fs = std::filesystem;

std::string MakeTempDir(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("eric-store-" + std::string(tag) + "-" +
                        std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

Result<std::vector<store::WalRecord>> ReplayAll(const std::string& path,
                                                uint64_t fingerprint = 0,
                                                store::WalRecoveryInfo* info =
                                                    nullptr) {
  std::vector<store::WalRecord> records;
  auto replayed = store::Wal::Replay(
      path,
      [&records](const store::WalRecord& record) -> Status {
        records.push_back(record);
        return Status::Ok();
      },
      fingerprint);
  if (!replayed.ok()) return replayed.status();
  if (info != nullptr) *info = *replayed;
  return records;
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

// --- record_io ----------------------------------------------------------------

TEST(RecordIoTest, RoundTripAndOverrunDetection) {
  store::RecordWriter writer;
  writer.U8(7);
  writer.U32(0xDEADBEEFu);
  writer.U64(0x1122334455667788ull);
  writer.Str("fleet");
  writer.Bytes(Payload({1, 2, 3}));

  store::RecordReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string text;
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(reader.U8(&u8));
  EXPECT_TRUE(reader.U32(&u32));
  EXPECT_TRUE(reader.U64(&u64));
  EXPECT_TRUE(reader.Str(&text));
  EXPECT_TRUE(reader.Bytes(&bytes));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_EQ(text, "fleet");
  EXPECT_EQ(bytes, Payload({1, 2, 3}));
  EXPECT_TRUE(reader.Exhausted());

  // Reading past the end poisons the reader instead of overrunning.
  EXPECT_FALSE(reader.U8(&u8));
  EXPECT_FALSE(reader.ok());
}

TEST(RecordIoTest, TruncatedStringIsRejected) {
  store::RecordWriter writer;
  writer.Str("durable");
  std::vector<uint8_t> bytes = writer.Take();
  bytes.pop_back();  // claimed length now exceeds the payload
  store::RecordReader reader(bytes);
  std::string text;
  EXPECT_FALSE(reader.Str(&text));
  EXPECT_FALSE(reader.ok());
}

// --- Crc32 --------------------------------------------------------------------

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // The classic check value: CRC32("123456789") = 0xCBF43926.
  const std::string check = "123456789";
  EXPECT_EQ(store::Crc32(std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(check.data()), check.size())),
            0xCBF43926u);
  EXPECT_EQ(store::Crc32({}), 0u);

  auto bytes = Payload({1, 2, 3, 4});
  const uint32_t before = store::Crc32(bytes);
  bytes[2] ^= 1;
  EXPECT_NE(store::Crc32(bytes), before);
}

// --- Wal ----------------------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string dir = MakeTempDir("wal-roundtrip");
  const std::string path = dir + "/test.wal";
  {
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(1, Payload({0xAA})).ok());
    ASSERT_TRUE(wal.Append(2, Payload({0xBB, 0xCC})).ok());
    ASSERT_TRUE(wal.Append(3, {}).ok());  // empty payloads are legal
    EXPECT_EQ(wal.appended(), 3u);
  }
  store::WalRecoveryInfo info;
  auto records = ReplayAll(path, 0, &info);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, 1);
  EXPECT_EQ((*records)[0].payload, Payload({0xAA}));
  EXPECT_EQ((*records)[1].type, 2);
  EXPECT_EQ((*records)[1].payload, Payload({0xBB, 0xCC}));
  EXPECT_EQ((*records)[2].type, 3);
  EXPECT_TRUE((*records)[2].payload.empty());
  EXPECT_EQ(info.records, 3u);
  EXPECT_FALSE(info.tail_corrupted);
  EXPECT_EQ(info.bytes_truncated, 0u);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  auto records = ReplayAll(MakeTempDir("wal-missing") + "/never-created.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, FingerprintMismatchRefused) {
  const std::string path = MakeTempDir("wal-fp") + "/test.wal";
  {
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path, {}, /*fingerprint=*/111).ok());
    ASSERT_TRUE(wal.Append(1, Payload({1})).ok());
  }
  EXPECT_EQ(ReplayAll(path, /*fingerprint=*/222).status().code(),
            ErrorCode::kFailedPrecondition);
  store::Wal wal;
  EXPECT_EQ(wal.Open(path, {}, /*fingerprint=*/222).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(wal.Open(path, {}, /*fingerprint=*/111).ok());
}

TEST(WalTest, TornTailIsTruncatedAndLogStaysAppendable) {
  const std::string path = MakeTempDir("wal-torn") + "/test.wal";
  {
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(1, Payload({1, 2, 3, 4})).ok());
    ASSERT_TRUE(wal.Append(2, Payload({5, 6, 7, 8})).ok());
    ASSERT_TRUE(wal.Append(3, Payload({9, 10, 11, 12})).ok());
  }
  // A crash mid-write leaves a partial final record.
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 2);

  store::WalRecoveryInfo info;
  auto records = ReplayAll(path, 0, &info);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_TRUE(info.tail_corrupted);
  EXPECT_GT(info.bytes_truncated, 0u);
  // The torn bytes are physically gone: the next replay is clean...
  store::WalRecoveryInfo again;
  ASSERT_TRUE(ReplayAll(path, 0, &again).ok());
  EXPECT_FALSE(again.tail_corrupted);
  // ...and appends land after the last good record.
  {
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(4, Payload({42})).ok());
  }
  auto reopened = ReplayAll(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->size(), 3u);
  EXPECT_EQ((*reopened)[2].type, 4);
}

TEST(WalTest, BitFlipFailsCrcAndPoisonsTheTail) {
  const std::string path = MakeTempDir("wal-flip") + "/test.wal";
  // Fixed payload sizes so the corruption offset is computable: header 16,
  // frame = 9 + payload.
  {
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(1, Payload({1, 1, 1, 1})).ok());
    ASSERT_TRUE(wal.Append(2, Payload({2, 2, 2, 2})).ok());
    ASSERT_TRUE(wal.Append(3, Payload({3, 3, 3, 3})).ok());
  }
  // Flip one payload byte inside record 2 (offset 16 + 13 + 9 + 1).
  FlipByteAt(path, 16 + 13 + 9 + 1);

  store::WalRecoveryInfo info;
  auto records = ReplayAll(path, 0, &info);
  ASSERT_TRUE(records.ok());
  // CRC can tell record 2 is damaged but not whether record 3 was framed
  // relative to damaged bytes: everything from the corruption on is tail.
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, 1);
  EXPECT_TRUE(info.tail_corrupted);
  EXPECT_EQ(info.bytes_truncated, 2 * (9u + 4u));
  EXPECT_EQ(fs::file_size(path), 16u + 13u);
}

TEST(WalTest, GroupCommitConcurrentAppendsAllDurable) {
  const std::string path = MakeTempDir("wal-group") + "/test.wal";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    store::WalOptions options;
    options.sync = store::SyncMode::kGroupCommit;
    options.group_commit_window_us = 200;
    store::Wal wal;
    ASSERT_TRUE(wal.Open(path, options).ok());
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          store::RecordWriter rec;
          rec.U32(static_cast<uint32_t>(t * kPerThread + i));
          if (!wal.Append(1, rec.bytes()).ok()) ++errors;
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(errors.load(), 0);
    EXPECT_EQ(wal.appended(), static_cast<uint64_t>(kThreads * kPerThread));
  }
  auto records = ReplayAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), static_cast<size_t>(kThreads * kPerThread));
  // Every append made it intact, none duplicated or interleaved torn.
  std::set<uint32_t> seen;
  for (const auto& record : *records) {
    store::RecordReader rec(record.payload);
    uint32_t value = 0;
    ASSERT_TRUE(rec.U32(&value));
    EXPECT_TRUE(seen.insert(value).second);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(WalTest, TruncateAllCompacts) {
  const std::string path = MakeTempDir("wal-compact") + "/test.wal";
  store::Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(1, Payload({1})).ok());
  ASSERT_TRUE(wal.Append(2, Payload({2})).ok());
  ASSERT_TRUE(wal.TruncateAll().ok());
  ASSERT_TRUE(wal.Append(3, Payload({3})).ok());
  wal.Close();
  auto records = ReplayAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, 3);
}

// --- Snapshots ----------------------------------------------------------------

TEST(SnapshotTest, WriteLoadRoundTripRetiringOlder) {
  const std::string dir = MakeTempDir("snap-roundtrip");
  ASSERT_TRUE(store::WriteSnapshot(dir, "reg", 1, 9, Payload({1, 1})).ok());
  ASSERT_TRUE(store::WriteSnapshot(dir, "reg", 2, 9, Payload({2, 2})).ok());

  auto loaded = store::LoadLatestSnapshot(dir, "reg", 9);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->found);
  EXPECT_EQ(loaded->sequence, 2u);
  EXPECT_EQ(loaded->payload, Payload({2, 2}));
  // The older snapshot was retired by the newer write.
  EXPECT_FALSE(fs::exists(dir + "/reg-1.snap"));
}

TEST(SnapshotTest, CorruptLatestFallsBackToPrevious) {
  const std::string dir = MakeTempDir("snap-fallback");
  ASSERT_TRUE(store::WriteSnapshot(dir, "reg", 1, 0, Payload({1})).ok());
  // Handcraft a newer corrupt file (WriteSnapshot would have retired the
  // old one, so recreate the crash case directly).
  ASSERT_TRUE(store::WriteSnapshot(dir, "tmp", 2, 0, Payload({2})).ok());
  fs::rename(dir + "/tmp-2.snap", dir + "/reg-2.snap");
  FlipByteAt(dir + "/reg-2.snap", fs::file_size(dir + "/reg-2.snap") - 1);

  auto loaded = store::LoadLatestSnapshot(dir, "reg", 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->found);
  EXPECT_EQ(loaded->sequence, 1u);
  EXPECT_EQ(loaded->payload, Payload({1}));
}

TEST(SnapshotTest, AllSnapshotsCorruptFailsClosed) {
  // Compaction leaves exactly one snapshot with empty WALs behind it:
  // if that file rots, recovery must refuse rather than silently
  // resurrect an empty fleet.
  const std::string dir = MakeTempDir("snap-allcorrupt");
  ASSERT_TRUE(store::WriteSnapshot(dir, "reg", 3, 0, Payload({9, 9})).ok());
  FlipByteAt(dir + "/reg-3.snap", fs::file_size(dir + "/reg-3.snap") - 1);
  EXPECT_EQ(store::LoadLatestSnapshot(dir, "reg", 0).status().code(),
            ErrorCode::kCorruptPackage);
}

TEST(SnapshotTest, MissingAndMismatchedSnapshots) {
  const std::string dir = MakeTempDir("snap-missing");
  auto loaded = store::LoadLatestSnapshot(dir, "reg", 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->found);

  ASSERT_TRUE(store::WriteSnapshot(dir, "reg", 1, 7, Payload({1})).ok());
  EXPECT_EQ(store::LoadLatestSnapshot(dir, "reg", 8).status().code(),
            ErrorCode::kFailedPrecondition);
}

// --- DeviceRegistry persistence -----------------------------------------------

constexpr const char* kTinyProgram = R"(
  fn main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) { sum = sum + i * i; i = i + 1; }
    return sum;
  }
)";
constexpr int64_t kTinyProgramResult = 385;

fleet::RegistryConfig TestRegistryConfig() {
  fleet::RegistryConfig config;
  config.key_config.domain = "store.test.v1";
  config.shard_count = 4;
  return config;
}

TEST(RegistryPersistenceTest, FleetSurvivesRestart) {
  const std::string dir = MakeTempDir("reg-restart");
  fleet::GroupId group_a = 0, group_b = 0;
  std::vector<fleet::DeviceId> devices;
  fleet::DeviceId solo = 0, revoked = 0;
  crypto::Key256 group_a_key{};

  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    group_a = registry.CreateGroup("line-a");
    group_b = registry.CreateGroup("line-b");
    for (uint64_t i = 0; i < 10; ++i) {
      auto id = registry.Enroll(0x5709E000 + i,
                                i % 2 == 0 ? group_a : group_b);
      ASSERT_TRUE(id.ok());
      devices.push_back(*id);
    }
    auto solo_id = registry.Enroll(0x5709EFFF);
    ASSERT_TRUE(solo_id.ok());
    solo = *solo_id;
    revoked = devices[3];
    ASSERT_TRUE(registry.Revoke(revoked).ok());
    group_a_key = *registry.GroupKey(group_a);
  }  // daemon dies

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_TRUE(info.attached);
  EXPECT_EQ(info.devices_recovered, 11u);
  EXPECT_EQ(info.groups_recovered, 2u);
  EXPECT_EQ(info.corrupt_tails, 0u);

  const auto stats = recovered.Stats();
  EXPECT_EQ(stats.devices, 11u);
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.revoked, 1u);

  // Identity, grouping, and status reconstructed exactly.
  auto revoked_info = recovered.Lookup(revoked);
  ASSERT_TRUE(revoked_info.ok());
  EXPECT_EQ(revoked_info->status, fleet::DeviceStatus::kRevoked);
  auto solo_info = recovered.Lookup(solo);
  ASSERT_TRUE(solo_info.ok());
  EXPECT_EQ(solo_info->group, fleet::kNoGroup);
  auto members = recovered.GroupMembers(group_a);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 5u);

  // Keys re-derive identically: a package sealed under the pre-crash
  // group key validates and runs on a recovered member.
  EXPECT_EQ(*recovered.GroupKey(group_a), group_a_key);
  fleet::PackageCache cache;
  auto artifact = cache.GetOrBuild(kTinyProgram, group_a_key,
                                   recovered.key_config(),
                                   core::EncryptionPolicy::Full());
  ASSERT_TRUE(artifact.ok());
  auto run = recovered.Dispatch(members->front(), (*artifact)->wire);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
  // And the revoked device still refuses dispatch.
  EXPECT_EQ(recovered.Dispatch(revoked, (*artifact)->wire).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(recovered.GroupMembers(group_b)->size(), 5u);
}

TEST(RegistryPersistenceTest, SnapshotCompactsWalAndRecoversWithTail) {
  const std::string dir = MakeTempDir("reg-compact");
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    const auto group = registry.CreateGroup("g");
    std::vector<fleet::DeviceId> ids;
    for (uint64_t i = 0; i < 8; ++i) {
      auto id = registry.Enroll(0xC09AC7 + i, group);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(registry.Snapshot().ok());
    // Post-snapshot tail: three more mutations.
    ASSERT_TRUE(registry.Enroll(0xC09AD0, group).ok());
    ASSERT_TRUE(registry.Enroll(0xC09AD1, group).ok());
    ASSERT_TRUE(registry.Revoke(ids[0]).ok());
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.wal_records_replayed, 3u);  // compaction dropped the rest
  EXPECT_EQ(info.devices_recovered, 10u);
  EXPECT_EQ(recovered.Stats().revoked, 1u);
}

TEST(RegistryPersistenceTest, EpochBumpSurvivesRestartViaWalReplay) {
  const std::string dir = MakeTempDir("reg-epoch");
  fleet::GroupId rotating = 0, steady = 0;
  std::vector<fleet::DeviceId> members;
  crypto::Key256 old_key{}, new_key{};
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    rotating = registry.CreateGroup("rotating");
    steady = registry.CreateGroup("steady");
    for (uint64_t i = 0; i < 4; ++i) {
      auto id = registry.Enroll(0xE70C4000 + i, rotating);
      ASSERT_TRUE(id.ok());
      members.push_back(*id);
    }
    ASSERT_TRUE(registry.Enroll(0xE70C4FFF, steady).ok());
    old_key = *registry.GroupKey(rotating);
    auto rotation = registry.RotateGroupEpoch(rotating);
    ASSERT_TRUE(rotation.ok());
    ASSERT_TRUE(rotation->rotated);
    new_key = *registry.GroupKey(rotating);
    ASSERT_FALSE(new_key == old_key);
  }  // daemon dies after the bump

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_EQ(info.epoch_bumps_replayed, 1u);
  EXPECT_EQ(info.orphan_epoch_bumps_dropped, 0u);
  auto epoch = recovered.GroupEpoch(rotating);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  auto steady_epoch = recovered.GroupEpoch(steady);
  ASSERT_TRUE(steady_epoch.ok());
  EXPECT_EQ(*steady_epoch, 0u);

  // The recovered fleet seals — and validates — under the new epoch; a
  // stale-epoch package is rejected by the replayed-rotation HDEs.
  EXPECT_EQ(*recovered.GroupKey(rotating), new_key);
  auto context = recovered.SealingContextFor(members.front());
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(context->config.epoch, 1u);
  fleet::PackageCache cache;
  auto fresh = cache.GetOrBuild(kTinyProgram, context->key, context->config,
                                core::EncryptionPolicy::Full());
  ASSERT_TRUE(fresh.ok());
  crypto::KeyConfig stale_config = recovered.key_config();
  auto stale = cache.GetOrBuild(kTinyProgram, old_key, stale_config,
                                core::EncryptionPolicy::Full());
  ASSERT_TRUE(stale.ok());
  for (fleet::DeviceId member : members) {
    auto run = recovered.Dispatch(member, (*fresh)->wire);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
    EXPECT_FALSE(recovered.Dispatch(member, (*stale)->wire).ok());
  }
}

TEST(RegistryPersistenceTest, EpochSurvivesSnapshotCompaction) {
  const std::string dir = MakeTempDir("reg-epoch-snap");
  fleet::GroupId group = 0;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    group = registry.CreateGroup("g");
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(registry.Enroll(0x5A4E000 + i, group).ok());
    }
    ASSERT_TRUE(registry.RotateGroupEpochTo(group, 5).ok());
    // Compaction truncates the WALs: the epoch must ride the snapshot.
    ASSERT_TRUE(registry.Snapshot().ok());
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.epoch_bumps_replayed, 0u);  // the WAL was compacted
  auto epoch = recovered.GroupEpoch(group);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 5u);
}

TEST(CampaignJournalTest, RotationBeginRoundTrip) {
  const std::string dir = MakeTempDir("journal-rotation");
  const std::vector<fleet::DeviceId> targets = {11, 12, 13, 14};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(
        journal.BeginRotation(0xF1A9, targets, /*group=*/7,
                              /*target_epoch=*/3)
            .ok());
    fleet::TargetCheckpoint done;
    done.device = 12;
    done.ok = true;
    done.attempts = 1;
    journal.OnTargetCheckpoint(done);
    ASSERT_TRUE(journal.last_error().ok());
  }  // crash mid-rotation

  fleet::CampaignJournal reopened;
  ASSERT_TRUE(reopened.Open(dir).ok());
  const auto& recovered = reopened.recovered();
  EXPECT_TRUE(recovered.active);
  EXPECT_TRUE(recovered.rotation);
  EXPECT_EQ(recovered.rotation_group, 7u);
  EXPECT_EQ(recovered.rotation_epoch, 3u);
  EXPECT_EQ(recovered.campaign_fingerprint, 0xF1A9u);
  EXPECT_EQ(recovered.targets, targets);
  EXPECT_EQ(recovered.RemainingTargets(),
            (std::vector<fleet::DeviceId>{11, 13, 14}));

  // A plain Begin (after abandoning the rotation) leaves no rotation
  // marker for the next recovery to misread.
  ASSERT_TRUE(reopened.Abandon().ok());
  ASSERT_TRUE(reopened.Begin(0xBEEF, targets).ok());
}

TEST(CampaignJournalTest, PlainBeginRecoversWithoutRotationMarker) {
  const std::string dir = MakeTempDir("journal-plain");
  const std::vector<fleet::DeviceId> targets = {21, 22};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(journal.Begin(0xBEEF, targets).ok());
  }
  fleet::CampaignJournal reopened;
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_TRUE(reopened.recovered().active);
  EXPECT_FALSE(reopened.recovered().rotation);
  EXPECT_EQ(reopened.recovered().campaign_fingerprint, 0xBEEFu);
}

TEST(RegistryPersistenceTest, AutoSnapshotEveryNMutations) {
  const std::string dir = MakeTempDir("reg-auto");
  fleet::RegistryStorageOptions options;
  options.snapshot_every = 4;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir, options).ok());
    const auto group = registry.CreateGroup("g");
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(registry.Enroll(0xA07A + i, group).ok());
    }
    EXPECT_GE(registry.storage_info().snapshots_written, 2u);
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir, options).ok());
  EXPECT_TRUE(recovered.storage_info().snapshot_loaded);
  EXPECT_EQ(recovered.Stats().devices, 10u);
}

TEST(RegistryPersistenceTest, CorruptWalTailLosesOnlyUnackedRecords) {
  const std::string dir = MakeTempDir("reg-corrupt");
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(registry.Enroll(0xBAD000 + i).ok());
    }
  }
  // Corrupt the FINAL record of one populated shard log (a torn write of
  // the last acknowledged mutation, as a dying disk would leave it).
  std::string victim;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0 && fs::file_size(entry.path()) > 16) {
      victim = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  FlipByteAt(victim, fs::file_size(victim) - 1);

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_EQ(info.corrupt_tails, 1u);
  EXPECT_GT(info.tail_bytes_truncated, 0u);
  // Exactly the one damaged enrollment is gone; the other five survive.
  EXPECT_EQ(info.devices_recovered, 5u);
}

TEST(RegistryPersistenceTest, LostGroupRecordIsRebuiltFromItsEnrollments) {
  const std::string dir = MakeTempDir("reg-lostgroup");
  fleet::GroupId group = 0;
  crypto::Key256 group_key{};
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    group = registry.CreateGroup("line-x");
    group_key = *registry.GroupKey(group);
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(registry.Enroll(0x10057 + i, group).ok());
    }
  }
  // The group-create record dies (torn groups.wal tail) while the
  // enrollments that reference it survive in the shard logs.
  FlipByteAt(dir + "/groups.wal", fs::file_size(dir + "/groups.wal") - 1);

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  // All four devices came back, the group was rebuilt from its id, and
  // the key matches (keys derive from the id, only the label is lost).
  EXPECT_EQ(recovered.Stats().devices, 4u);
  auto members = recovered.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 4u);
  EXPECT_EQ(*recovered.GroupKey(group), group_key);
}

TEST(RegistryPersistenceTest, ConfigFingerprintGuardsRecovery) {
  const std::string dir = MakeTempDir("reg-config");
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    ASSERT_TRUE(registry.Enroll(0xF00D).ok());
  }
  // A different KDF domain would re-derive different keys: refused.
  fleet::RegistryConfig other = TestRegistryConfig();
  other.key_config.domain = "store.test.v2";
  fleet::DeviceRegistry mismatched(other);
  EXPECT_EQ(mismatched.OpenStorage(dir).code(),
            ErrorCode::kFailedPrecondition);
  // A different shard count would scatter records across files: refused.
  fleet::RegistryConfig resharded = TestRegistryConfig();
  resharded.shard_count = 8;
  fleet::DeviceRegistry resharded_registry(resharded);
  EXPECT_EQ(resharded_registry.OpenStorage(dir).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(RegistryPersistenceTest, OpenStorageRequiresEmptyRegistry) {
  fleet::DeviceRegistry registry(TestRegistryConfig());
  ASSERT_TRUE(registry.Enroll(0xE0).ok());
  EXPECT_EQ(registry.OpenStorage(MakeTempDir("reg-nonempty")).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(RegistryPersistenceTest, RevokeReEnrollSemanticsSurviveReplay) {
  const std::string dir = MakeTempDir("reg-reenroll");
  fleet::DeviceId first = 0, replacement = 0;
  fleet::GroupId group = 0;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    group = registry.CreateGroup("g");
    auto id = registry.Enroll(0xD0D0, group);
    ASSERT_TRUE(id.ok());
    first = *id;
    ASSERT_TRUE(registry.Revoke(first).ok());
    auto again = registry.Enroll(0xD0D0, group);  // same silicon, new record
    ASSERT_TRUE(again.ok());
    replacement = *again;
    EXPECT_NE(first, replacement);
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  EXPECT_EQ(recovered.Lookup(first)->status, fleet::DeviceStatus::kRevoked);
  EXPECT_EQ(recovered.Lookup(replacement)->status,
            fleet::DeviceStatus::kEnrolled);
  auto members = recovered.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 2u);  // revocation is a soft delete
}

// --- CampaignJournal ----------------------------------------------------------

fleet::TargetCheckpoint MakeCheckpoint(fleet::DeviceId device, bool ok,
                                       bool revoked = false,
                                       bool skipped = false) {
  fleet::TargetCheckpoint checkpoint;
  checkpoint.device = device;
  checkpoint.ok = ok;
  checkpoint.revoked = revoked;
  checkpoint.skipped = skipped;
  checkpoint.attempts = skipped ? 0 : 1;
  return checkpoint;
}

TEST(CampaignJournalTest, CrashMidCampaignResumesWithRemainingTargets) {
  const std::string dir = MakeTempDir("journal-crash");
  const std::vector<fleet::DeviceId> targets{11, 12, 13, 14, 15, 16};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    EXPECT_FALSE(journal.recovered().active);
    ASSERT_TRUE(journal.Begin(0xCAFE, targets).ok());
    journal.OnTargetCheckpoint(MakeCheckpoint(11, true));
    journal.OnTargetCheckpoint(MakeCheckpoint(12, false));
    journal.OnTargetCheckpoint(MakeCheckpoint(13, false, /*revoked=*/true));
    // Skipped targets must stay resumable: not recorded.
    journal.OnTargetCheckpoint(
        MakeCheckpoint(14, false, false, /*skipped=*/true));
    ASSERT_TRUE(journal.last_error().ok());
  }  // crash

  fleet::CampaignJournal resumed;
  ASSERT_TRUE(resumed.Open(dir).ok());
  const auto& state = resumed.recovered();
  EXPECT_TRUE(state.active);
  EXPECT_EQ(state.campaign_fingerprint, 0xCAFEu);
  EXPECT_EQ(state.targets, targets);
  EXPECT_EQ(state.completed.size(), 3u);
  EXPECT_EQ(state.delivered, 1u);
  EXPECT_EQ(state.failed, 1u);
  EXPECT_EQ(state.revoked, 1u);
  EXPECT_EQ(state.RemainingTargets(),
            (std::vector<fleet::DeviceId>{14, 15, 16}));

  // A fresh Begin is refused while the interrupted campaign is live...
  EXPECT_EQ(resumed.Begin(0xFEED, targets).code(),
            ErrorCode::kFailedPrecondition);
  // ...finish it and the journal reports nothing active afterwards.
  resumed.OnTargetCheckpoint(MakeCheckpoint(14, true));
  resumed.OnTargetCheckpoint(MakeCheckpoint(15, true));
  resumed.OnTargetCheckpoint(MakeCheckpoint(16, true));
  ASSERT_TRUE(resumed.Complete().ok());

  fleet::CampaignJournal after;
  ASSERT_TRUE(after.Open(dir).ok());
  EXPECT_FALSE(after.recovered().active);
  ASSERT_TRUE(after.Begin(0xFEED, targets).ok());  // now allowed
  // A freshly begun campaign is just as live as a resumed one: a second
  // Begin must not truncate its checkpoints.
  EXPECT_EQ(after.Begin(0xBEEF, targets).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(CampaignJournalTest, AbandonDropsInterruptedCampaign) {
  const std::string dir = MakeTempDir("journal-abandon");
  const std::vector<fleet::DeviceId> targets{1, 2};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(journal.Begin(1, targets).ok());
  }
  fleet::CampaignJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  EXPECT_TRUE(journal.recovered().active);
  ASSERT_TRUE(journal.Abandon().ok());
  fleet::CampaignJournal after;
  ASSERT_TRUE(after.Open(dir).ok());
  EXPECT_FALSE(after.recovered().active);
}

TEST(CampaignJournalTest, TornJournalTailRecoversToLastCheckpoint) {
  const std::string dir = MakeTempDir("journal-torn");
  const std::vector<fleet::DeviceId> torn_targets{1, 2, 3};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(journal.Begin(7, torn_targets).ok());
    journal.OnTargetCheckpoint(MakeCheckpoint(1, true));
    journal.OnTargetCheckpoint(MakeCheckpoint(2, true));
  }
  const std::string path = dir + "/campaign.wal";
  fs::resize_file(path, fs::file_size(path) - 3);  // torn final checkpoint

  fleet::CampaignJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  EXPECT_TRUE(journal.recovered().active);
  EXPECT_EQ(journal.recovered().completed.size(), 1u);
  EXPECT_EQ(journal.recovered().RemainingTargets(),
            (std::vector<fleet::DeviceId>{2, 3}));
}

// The end-to-end exactly-once property, in process: a campaign "crashes"
// (cancel + journal teardown) partway, a second process resumes from the
// journal, and across both runs every target is delivered exactly once.
TEST(CampaignJournalTest, EngineCrashResumeDeliversExactlyOnce) {
  const std::string dir = MakeTempDir("journal-engine");

  fleet::DeviceRegistry registry(TestRegistryConfig());
  const auto group = registry.CreateGroup("fleet");
  std::vector<fleet::DeviceId> targets;
  for (uint64_t i = 0; i < 10; ++i) {
    auto id = registry.Enroll(0xE2E00 + i, group);
    ASSERT_TRUE(id.ok());
    targets.push_back(*id);
  }
  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);

  fleet::CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.devices = targets;
  campaign.workers = 1;  // deterministic checkpoint count before "crash"

  // A sink that forwards to the journal and kills the daemon (cancels)
  // after the 4th durable checkpoint.
  struct CrashingSink : fleet::CampaignCheckpointSink {
    fleet::CampaignJournal* journal = nullptr;
    fleet::CampaignControl* control = nullptr;
    std::atomic<int> checkpoints{0};
    void OnTargetCheckpoint(
        const fleet::TargetCheckpoint& checkpoint) override {
      journal->OnTargetCheckpoint(checkpoint);
      if (checkpoints.fetch_add(1) + 1 == 4) control->Cancel();
    }
  };

  std::set<fleet::DeviceId> first_run_delivered;
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(journal.Begin(0xD15A57E2, targets).ok());

    fleet::CampaignControl control;
    CrashingSink sink;
    sink.journal = &journal;
    sink.control = &control;
    control.AttachCheckpointSink(&sink);
    fleet::DispatchGovernor governor({}, &control);
    fleet::CampaignConfig crashed = campaign;
    crashed.governor = &governor;

    auto report = engine.Run(crashed);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->succeeded, 4u);
    EXPECT_EQ(report->skipped, 6u);
    for (const auto& outcome : report->outcomes) {
      if (outcome.ok) first_run_delivered.insert(outcome.device);
    }
    ASSERT_TRUE(journal.last_error().ok());
  }  // crash: journal closed mid-campaign, no Complete()

  // Restart: recover the journal, resume over the remaining targets.
  fleet::CampaignJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  ASSERT_TRUE(journal.recovered().active);
  EXPECT_EQ(journal.recovered().completed.size(), 4u);
  const auto remaining = journal.recovered().RemainingTargets();
  EXPECT_EQ(remaining.size(), 6u);

  fleet::CampaignControl control;
  control.AttachCheckpointSink(&journal);
  fleet::DispatchGovernor governor({}, &control);
  fleet::CampaignConfig resumed = campaign;
  resumed.devices = remaining;
  resumed.governor = &governor;
  auto report = engine.Run(resumed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 6u);
  ASSERT_TRUE(journal.Complete().ok());

  // Exactly once: the two delivery sets partition the fleet.
  std::set<fleet::DeviceId> second_run_delivered;
  for (const auto& outcome : report->outcomes) {
    if (outcome.ok) second_run_delivered.insert(outcome.device);
  }
  EXPECT_EQ(first_run_delivered.size() + second_run_delivered.size(),
            targets.size());
  for (fleet::DeviceId device : second_run_delivered) {
    EXPECT_FALSE(first_run_delivered.contains(device))
        << "device " << device << " delivered twice";
  }
}

// --- Delivery manifests -------------------------------------------------------

TEST(RegistryPersistenceTest, DeliveryManifestSurvivesRestartViaWalReplay) {
  const std::string dir = MakeTempDir("reg-manifest");
  fleet::DeviceId with_manifest = 0, without_manifest = 0;
  crypto::Sha256Digest fingerprint{};
  fingerprint[0] = 0xAB;
  fingerprint[31] = 0xCD;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    const auto group = registry.CreateGroup("g");
    with_manifest = *registry.Enroll(0x3A61F, group);
    without_manifest = *registry.Enroll(0x3A620, group);
    // Unknown devices are refused before anything reaches the WAL.
    EXPECT_EQ(registry.RecordDelivery(9999, 1, fingerprint).code(),
              ErrorCode::kNotFound);
    // Two records for one device: last write wins across the restart.
    ASSERT_TRUE(registry.RecordDelivery(with_manifest, 0x11, {}).ok());
    ASSERT_TRUE(
        registry.RecordDelivery(with_manifest, 0x22, fingerprint).ok());
  }  // daemon dies

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_EQ(info.manifest_records_replayed, 2u);
  EXPECT_EQ(info.orphan_manifests_dropped, 0u);
  auto manifest = recovered.DeliveredVersion(with_manifest);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 0x22u);
  EXPECT_EQ(manifest->key_fingerprint, fingerprint);
  EXPECT_EQ(recovered.DeliveredVersion(without_manifest).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(recovered.DeliveredVersion(9999).status().code(),
            ErrorCode::kNotFound);
}

TEST(RegistryPersistenceTest, DeliveryManifestSurvivesSnapshotCompaction) {
  const std::string dir = MakeTempDir("reg-manifest-snap");
  fleet::DeviceId device = 0;
  crypto::Sha256Digest fingerprint{};
  fingerprint[7] = 0x77;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    device = *registry.Enroll(0x3A630);
    ASSERT_TRUE(registry.RecordDelivery(device, 0x33, fingerprint).ok());
    // Compaction truncates the WALs: the manifest must ride the
    // snapshot's v3 device fields.
    ASSERT_TRUE(registry.Snapshot().ok());
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.manifest_records_replayed, 0u);  // the WAL was compacted
  auto manifest = recovered.DeliveredVersion(device);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 0x33u);
  EXPECT_EQ(manifest->key_fingerprint, fingerprint);
}

TEST(RegistryPersistenceTest, SnapshotV2WithoutManifestsStillLoads) {
  // Back-compat: a state dir snapshotted before the manifest schema
  // (v2: groups carry epochs, devices end at the status byte) must load
  // with every device simply manifest-less.
  const std::string dir = MakeTempDir("reg-snap-v2");
  const fleet::RegistryConfig config = TestRegistryConfig();

  // The registry's storage fingerprint, reproduced field-for-field (it
  // is what binds snapshot files to a configuration; the schema version
  // is deliberately NOT part of it, or old snapshots could never load).
  store::RecordWriter fp;
  fp.U64(config.shard_count);
  fp.U64(config.secret_seed);
  fp.U64(config.key_config.epoch);
  fp.U64(config.key_config.environment_binding);
  fp.Str(config.key_config.domain);
  fp.U8(static_cast<uint8_t>(config.cipher));
  const uint64_t fingerprint = store::Fnv1a64(fp.bytes());

  // A v2 snapshot: one group at epoch 2, two devices (one revoked).
  store::RecordWriter snap;
  snap.U32(2);  // schema version
  snap.U64(1);  // group count
  snap.U64(1);
  snap.Str("line-a");
  snap.U64(2);  // group epoch
  snap.U64(2);  // device count
  snap.U64(1);
  snap.U64(0x5EED1);
  snap.U64(1);  // group 1
  snap.U8(0);   // enrolled
  snap.U64(2);
  snap.U64(0x5EED2);
  snap.U64(1);
  snap.U8(1);  // revoked
  ASSERT_TRUE(
      store::WriteSnapshot(dir, "registry", 1, fingerprint, snap.bytes())
          .ok());

  fleet::DeviceRegistry recovered(config);
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  EXPECT_TRUE(recovered.storage_info().snapshot_loaded);
  EXPECT_EQ(recovered.Stats().devices, 2u);
  EXPECT_EQ(recovered.Stats().revoked, 1u);
  EXPECT_EQ(*recovered.GroupEpoch(1), 2u);
  EXPECT_EQ(recovered.DeliveredVersion(1).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(recovered.DeliveredVersion(2).status().code(),
            ErrorCode::kFailedPrecondition);

  // And the first delivery recorded on the recovered fleet round-trips
  // through the new v3 snapshot.
  ASSERT_TRUE(recovered.RecordDelivery(1, 0x99, {}).ok());
  ASSERT_TRUE(recovered.Snapshot().ok());
  fleet::DeviceRegistry again(config);
  ASSERT_TRUE(again.OpenStorage(dir).ok());
  EXPECT_EQ(again.DeliveredVersion(1)->version, 0x99u);
}

TEST(CampaignJournalTest, OutcomeFormSurvivesReplay) {
  const std::string dir = MakeTempDir("journal-form");
  const std::vector<fleet::DeviceId> targets = {31, 32, 33};
  {
    fleet::CampaignJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ASSERT_TRUE(journal.Begin(0xD17A, targets).ok());
    fleet::TargetCheckpoint as_delta;
    as_delta.device = 31;
    as_delta.ok = true;
    as_delta.delta = true;
    as_delta.attempts = 1;
    journal.OnTargetCheckpoint(as_delta);
    fleet::TargetCheckpoint as_full;
    as_full.device = 32;
    as_full.ok = true;
    as_full.attempts = 2;
    journal.OnTargetCheckpoint(as_full);
    ASSERT_TRUE(journal.last_error().ok());
  }  // crash mid-campaign

  fleet::CampaignJournal reopened;
  ASSERT_TRUE(reopened.Open(dir).ok());
  const auto& recovered = reopened.recovered();
  EXPECT_TRUE(recovered.active);
  EXPECT_EQ(recovered.delivered, 2u);
  EXPECT_EQ(recovered.delta_delivered, 1u);
  EXPECT_EQ(recovered.RemainingTargets(),
            (std::vector<fleet::DeviceId>{33}));
}

// --- Per-device ISA persistence ----------------------------------------------

TEST(RegistryPersistenceTest, DeviceIsaSurvivesRestartViaWalReplay) {
  const std::string dir = MakeTempDir("reg-isa-wal");
  fleet::DeviceId rv64 = 0, rv32 = 0;
  crypto::Sha256Digest fingerprint{};
  fingerprint[3] = 0x32;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    const auto group = registry.CreateGroup("mixed");
    rv64 = *registry.Enroll(0x15AA64, group);
    rv32 = *registry.Enroll(0x15AA32, group, isa::IsaId::kRv32I);
    ASSERT_TRUE(registry
                    .RecordDelivery(rv32, 0x44, fingerprint,
                                    isa::IsaId::kRv32I)
                    .ok());
  }  // daemon dies before any snapshot: recovery is pure WAL replay

  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  EXPECT_EQ(recovered.Lookup(rv64)->isa, isa::IsaId::kRv64Gc);
  EXPECT_EQ(recovered.Lookup(rv32)->isa, isa::IsaId::kRv32I);
  auto manifest = recovered.DeliveredVersion(rv32);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 0x44u);
  EXPECT_EQ(manifest->isa, isa::IsaId::kRv32I);
}

TEST(RegistryPersistenceTest, DeviceIsaSurvivesSnapshotCompaction) {
  const std::string dir = MakeTempDir("reg-isa-snap");
  fleet::DeviceId rv32 = 0;
  {
    fleet::DeviceRegistry registry(TestRegistryConfig());
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    rv32 = *registry.Enroll(0x15AB32, fleet::kNoGroup, isa::IsaId::kRv32I);
    ASSERT_TRUE(registry
                    .RecordDelivery(rv32, 0x55, {}, isa::IsaId::kRv32I)
                    .ok());
    // Compaction truncates the WALs: the ISA must ride the snapshot's
    // v4 device and manifest fields.
    ASSERT_TRUE(registry.Snapshot().ok());
  }
  fleet::DeviceRegistry recovered(TestRegistryConfig());
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  const auto info = recovered.storage_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.manifest_records_replayed, 0u);  // the WAL was compacted
  EXPECT_EQ(recovered.Lookup(rv32)->isa, isa::IsaId::kRv32I);
  EXPECT_EQ(recovered.DeliveredVersion(rv32)->isa, isa::IsaId::kRv32I);
}

TEST(RegistryPersistenceTest, SnapshotV3WithoutIsaStillLoads) {
  // Back-compat: a state dir snapshotted before per-device ISAs
  // (v3: devices end at the manifest, no isa bytes anywhere) must load
  // as an all-RV64GC fleet — that is the only ISA that existed then.
  const std::string dir = MakeTempDir("reg-snap-v3");
  const fleet::RegistryConfig config = TestRegistryConfig();

  store::RecordWriter fp;
  fp.U64(config.shard_count);
  fp.U64(config.secret_seed);
  fp.U64(config.key_config.epoch);
  fp.U64(config.key_config.environment_binding);
  fp.Str(config.key_config.domain);
  fp.U8(static_cast<uint8_t>(config.cipher));
  const uint64_t fingerprint = store::Fnv1a64(fp.bytes());

  // A v3 snapshot: one group, one manifest-less device, one device with
  // a delivery manifest.
  crypto::Sha256Digest keyfp{};
  keyfp[9] = 0x99;
  store::RecordWriter snap;
  snap.U32(3);  // schema version: manifests yes, ISAs no
  snap.U64(1);  // group count
  snap.U64(1);
  snap.Str("line-a");
  snap.U64(1);  // group epoch
  snap.U64(2);  // device count
  snap.U64(1);
  snap.U64(0x5EED1);
  snap.U64(1);  // group 1
  snap.U8(0);   // enrolled
  snap.U8(0);   // no manifest
  snap.U64(2);
  snap.U64(0x5EED2);
  snap.U64(1);
  snap.U8(0);
  snap.U8(1);  // has manifest
  snap.U64(0x77);
  snap.Bytes(std::vector<uint8_t>(keyfp.begin(), keyfp.end()));
  ASSERT_TRUE(
      store::WriteSnapshot(dir, "registry", 1, fingerprint, snap.bytes())
          .ok());

  fleet::DeviceRegistry recovered(config);
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  EXPECT_TRUE(recovered.storage_info().snapshot_loaded);
  EXPECT_EQ(recovered.Stats().devices, 2u);
  EXPECT_EQ(recovered.Lookup(1)->isa, isa::IsaId::kRv64Gc);
  EXPECT_EQ(recovered.Lookup(2)->isa, isa::IsaId::kRv64Gc);
  auto manifest = recovered.DeliveredVersion(2);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 0x77u);
  EXPECT_EQ(manifest->key_fingerprint, keyfp);
  EXPECT_EQ(manifest->isa, isa::IsaId::kRv64Gc);

  // A fresh rv32 enrollment on the recovered fleet round-trips through
  // the new v4 snapshot alongside the migrated devices.
  const auto rv32 = recovered.Enroll(0x5EED3, 1, isa::IsaId::kRv32I);
  ASSERT_TRUE(rv32.ok());
  ASSERT_TRUE(recovered.Snapshot().ok());
  fleet::DeviceRegistry again(config);
  ASSERT_TRUE(again.OpenStorage(dir).ok());
  EXPECT_EQ(again.Lookup(*rv32)->isa, isa::IsaId::kRv32I);
  EXPECT_EQ(again.Lookup(1)->isa, isa::IsaId::kRv64Gc);
  EXPECT_EQ(again.DeliveredVersion(2)->version, 0x77u);
}

TEST(RegistryPersistenceTest, SnapshotNamingUnknownIsaFailsClosed) {
  // A v4 snapshot whose device claims an ISA no backend implements must
  // refuse to load — defaulting would dispatch wrong-ISA images forever.
  const std::string dir = MakeTempDir("reg-snap-bad-isa");
  const fleet::RegistryConfig config = TestRegistryConfig();

  store::RecordWriter fp;
  fp.U64(config.shard_count);
  fp.U64(config.secret_seed);
  fp.U64(config.key_config.epoch);
  fp.U64(config.key_config.environment_binding);
  fp.Str(config.key_config.domain);
  fp.U8(static_cast<uint8_t>(config.cipher));
  const uint64_t fingerprint = store::Fnv1a64(fp.bytes());

  store::RecordWriter snap;
  snap.U32(4);  // current schema
  snap.U64(0);  // no groups
  snap.U64(1);  // one device
  snap.U64(1);
  snap.U64(0x5EED9);
  snap.U64(0);  // kNoGroup
  snap.U8(0);   // enrolled
  snap.U8(9);   // ISA byte no backend claims
  snap.U8(0);   // no manifest
  ASSERT_TRUE(
      store::WriteSnapshot(dir, "registry", 1, fingerprint, snap.bytes())
          .ok());

  fleet::DeviceRegistry recovered(config);
  EXPECT_EQ(recovered.OpenStorage(dir).code(), ErrorCode::kCorruptPackage);
}

}  // namespace
}  // namespace eric
