// Unit tests for the crypto substrate: SHA-256 against FIPS 180-2 vectors,
// XOR cipher properties, AES-128 against FIPS 197, KDF domain separation.
#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes128.h"
#include "crypto/kdf.h"
#include "crypto/sha256.h"
#include "crypto/xor_cipher.h"
#include "support/hex.h"
#include "support/rng.h"

namespace eric::crypto {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// --- SHA-256 (FIPS 180-2 / NIST CAVS known answers) ----------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const auto data = Bytes("abc");
  EXPECT_EQ(DigestToHex(Sha256::Hash(data)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const auto data =
      Bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(DigestToHex(Sha256::Hash(data)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  const std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Xoshiro256 rng(1);
  std::vector<uint8_t> data(4097);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  const Sha256Digest oneshot = Sha256::Hash(data);
  // Split at awkward boundaries.
  for (size_t split : {1ul, 63ul, 64ul, 65ul, 1000ul, 4096ul}) {
    Sha256 h;
    h.Update(std::span<const uint8_t>(data.data(), split));
    h.Update(std::span<const uint8_t>(data.data() + split,
                                      data.size() - split));
    EXPECT_EQ(h.Finish(), oneshot) << "split=" << split;
  }
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 h;
  h.Update(Bytes("abc"));
  (void)h.Finish();
  h.Reset();
  h.Update(Bytes("abc"));
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, BlockCounterTracksCompressions) {
  Sha256 h;
  h.Update(std::vector<uint8_t>(128, 0));
  EXPECT_EQ(h.blocks_processed(), 2u);
  (void)h.Finish();  // padding adds one more block
  EXPECT_EQ(h.blocks_processed(), 3u);
}

TEST(Sha256Test, SingleBitChangesDigest) {
  std::vector<uint8_t> a(100, 0x55);
  std::vector<uint8_t> b = a;
  b[50] ^= 0x01;
  EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b));
}

// --- XOR cipher -----------------------------------------------------------

Key256 TestKey(uint8_t fill) {
  Key256 k;
  k.fill(fill);
  return k;
}

TEST(XorCipherTest, RoundtripIsIdentity) {
  XorCipher cipher(TestKey(0x42));
  std::vector<uint8_t> data = Bytes("the secret algorithm");
  const auto original = data;
  cipher.Apply(data);
  EXPECT_NE(data, original);
  cipher.Apply(data);
  EXPECT_EQ(data, original);
}

TEST(XorCipherTest, DifferentKeysDifferentCiphertext) {
  const auto plain = Bytes("same plaintext bytes");
  XorCipher a(TestKey(1)), b(TestKey(2));
  EXPECT_NE(a.Applied(plain), b.Applied(plain));
}

TEST(XorCipherTest, OffsetAddressing) {
  // Encrypting [A|B] in one call == encrypting A then B with offsets.
  XorCipher cipher(TestKey(7));
  Xoshiro256 rng(2);
  std::vector<uint8_t> data(300);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());

  auto whole = cipher.Applied(data);
  for (size_t split : {1ul, 31ul, 32ul, 33ul, 64ul, 299ul}) {
    auto part1 = cipher.Applied(
        std::span<const uint8_t>(data.data(), split), 0);
    auto part2 = cipher.Applied(
        std::span<const uint8_t>(data.data() + split, data.size() - split),
        split);
    part1.insert(part1.end(), part2.begin(), part2.end());
    EXPECT_EQ(part1, whole) << "split=" << split;
  }
}

TEST(XorCipherTest, KeystreamNotAllZero) {
  XorCipher cipher(TestKey(0));
  std::vector<uint8_t> stream(64, 0);
  cipher.Keystream(0, stream);
  int nonzero = 0;
  for (uint8_t b : stream) nonzero += b != 0;
  EXPECT_GT(nonzero, 48);  // overwhelming majority of bytes nonzero
}

TEST(XorCipherTest, KeystreamBlocksDiffer) {
  XorCipher cipher(TestKey(9));
  std::vector<uint8_t> s1(32, 0), s2(32, 0);
  cipher.Keystream(0, s1);
  cipher.Keystream(32, s2);
  EXPECT_NE(s1, s2);
}

// --- AES-128 (FIPS 197 Appendix B / C.1) -----------------------------------

TEST(Aes128Test, Fips197AppendixB) {
  Key128 key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  Aes128 aes(key);
  aes.EncryptBlock(std::span<uint8_t, 16>(block, 16));
  const uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(std::memcmp(block, expected, 16), 0);
}

TEST(Aes128Test, Fips197AppendixC1) {
  Key128 key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                       0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  Aes128 aes(key);
  aes.EncryptBlock(std::span<uint8_t, 16>(block, 16));
  const uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(std::memcmp(block, expected, 16), 0);
}

TEST(Aes128Test, CtrRoundtrip) {
  Key128 key{};
  key[0] = 1;
  Aes128 aes(key);
  std::vector<uint8_t> data = Bytes("counter mode streaming test data!");
  const auto original = data;
  aes.ApplyCtr(data);
  EXPECT_NE(data, original);
  aes.ApplyCtr(data);
  EXPECT_EQ(data, original);
}

TEST(Aes128Test, CtrOffsetAddressing) {
  Key128 key{};
  key[5] = 0xAA;
  Aes128 aes(key);
  std::vector<uint8_t> data(100, 0x77);
  auto whole = data;
  aes.ApplyCtr(whole, 0);
  for (size_t split : {1ul, 15ul, 16ul, 17ul, 99ul}) {
    auto copy = data;
    aes.ApplyCtr(std::span<uint8_t>(copy.data(), split), 0);
    aes.ApplyCtr(std::span<uint8_t>(copy.data() + split, copy.size() - split),
                 split);
    EXPECT_EQ(copy, whole) << split;
  }
}

TEST(Aes128Test, CtrBlockCount) {
  EXPECT_EQ(Aes128::CtrBlockCount(0, 0), 0u);
  EXPECT_EQ(Aes128::CtrBlockCount(0, 1), 1u);
  EXPECT_EQ(Aes128::CtrBlockCount(0, 16), 1u);
  EXPECT_EQ(Aes128::CtrBlockCount(0, 17), 2u);
  EXPECT_EQ(Aes128::CtrBlockCount(15, 2), 2u);  // straddles a boundary
}

// --- KDF -------------------------------------------------------------------

TEST(KdfTest, Deterministic) {
  const Key256 key = TestKey(3);
  EXPECT_EQ(DeriveKey(key, "label", 7), DeriveKey(key, "label", 7));
}

TEST(KdfTest, LabelSeparation) {
  const Key256 key = TestKey(3);
  EXPECT_NE(DeriveKey(key, "a", 0), DeriveKey(key, "b", 0));
}

TEST(KdfTest, ContextSeparation) {
  const Key256 key = TestKey(3);
  EXPECT_NE(DeriveKey(key, "a", 0), DeriveKey(key, "a", 1));
}

TEST(KdfTest, KeySeparation) {
  EXPECT_NE(DeriveKey(TestKey(1), "a", 0), DeriveKey(TestKey(2), "a", 0));
}

TEST(KdfTest, PufBasedKeyChangesWithEpoch) {
  const Key256 puf_key = TestKey(0x5A);
  KeyConfig c1, c2;
  c2.epoch = 1;
  EXPECT_NE(DerivePufBasedKey(puf_key, c1), DerivePufBasedKey(puf_key, c2));
}

TEST(KdfTest, PufBasedKeyChangesWithDomain) {
  const Key256 puf_key = TestKey(0x5A);
  KeyConfig c1, c2;
  c2.domain = "vendor.other";
  EXPECT_NE(DerivePufBasedKey(puf_key, c1), DerivePufBasedKey(puf_key, c2));
}

TEST(KdfTest, EnvironmentBindingChangesKey) {
  const Key256 puf_key = TestKey(0x11);
  KeyConfig plain, bound;
  bound.environment_binding = 42;  // e.g. a temperature band
  EXPECT_NE(DerivePufBasedKey(puf_key, plain),
            DerivePufBasedKey(puf_key, bound));
}

TEST(KdfTest, CipherKeyStreamsIndependent) {
  const Key256 pbk = TestKey(0x77);
  EXPECT_NE(DeriveCipherKey(pbk, 0), DeriveCipherKey(pbk, 1));
}

TEST(KdfTest, OneWayness) {
  // Derived keys must not reveal the parent: spot-check that the derived
  // key differs from the parent in many byte positions.
  const Key256 parent = TestKey(0xAB);
  const Key256 child = DeriveKey(parent, "x", 0);
  int differing = 0;
  for (size_t i = 0; i < parent.size(); ++i) differing += parent[i] != child[i];
  EXPECT_GT(differing, 24);
}

TEST(KdfTest, Truncation) {
  const Key256 k = DeriveKey(TestKey(1), "t", 0);
  const Key128 k128 = TruncateToKey128(k);
  EXPECT_TRUE(std::equal(k128.begin(), k128.end(), k.begin()));
}

}  // namespace
}  // namespace eric::crypto
