// Parameterized property sweeps: invariants that must hold across whole
// configuration ranges, not just the defaults.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "core/encryption_policy.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "crypto/xor_cipher.h"
#include "puf/puf_metrics.h"
#include "sim/soc.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace eric {
namespace {

// --- Cache geometry sweep -----------------------------------------------------

struct CacheGeometry {
  uint32_t size_kib;
  uint32_t ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometryTest, ExecutionSemanticsIndependentOfGeometry) {
  const auto* w = workloads::FindWorkload("qsort");
  auto compiled = compiler::Compile(w->source);
  ASSERT_TRUE(compiled.ok());

  sim::CpuTiming timing;
  timing.dcache.size_bytes = GetParam().size_kib * 1024;
  timing.dcache.ways = GetParam().ways;
  timing.icache.size_bytes = GetParam().size_kib * 1024;
  timing.icache.ways = GetParam().ways;
  sim::Soc soc(timing);
  soc.LoadProgram(compiled->program.image);
  const auto stats = soc.Run();
  // Functional result and instruction count never depend on the cache.
  EXPECT_EQ(stats.exit_code, w->reference());
  sim::Soc reference_soc;
  reference_soc.LoadProgram(compiled->program.image);
  EXPECT_EQ(stats.instructions, reference_soc.Run().instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheGeometry{4, 1}, CacheGeometry{4, 4},
                      CacheGeometry{16, 2}, CacheGeometry{16, 4},
                      CacheGeometry{64, 4}, CacheGeometry{64, 8}),
    [](const auto& info) {
      return std::to_string(info.param.size_kib) + "KiB_" +
             std::to_string(info.param.ways) + "way";
    });

TEST(CacheGeometryTest, LargerCacheNeverMissesMore) {
  // LRU is a stack algorithm: with fixed associativity-per-set growth,
  // a strictly larger cache (same line size, same ways, more sets) cannot
  // produce more misses on the same trace. Sweep three sizes.
  const auto* w = workloads::FindWorkload("dijkstra");
  auto compiled = compiler::Compile(w->source);
  ASSERT_TRUE(compiled.ok());
  uint64_t previous_misses = UINT64_MAX;
  for (uint32_t kib : {2u, 8u, 32u, 128u}) {
    sim::CpuTiming timing;
    timing.dcache.size_bytes = kib * 1024;
    sim::Soc soc(timing);
    soc.LoadProgram(compiled->program.image);
    const auto stats = soc.Run();
    EXPECT_LE(stats.dcache.misses, previous_misses) << kib << " KiB";
    previous_misses = stats.dcache.misses;
  }
}

// --- Encryption fraction sweep --------------------------------------------------

class FractionSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(FractionSweepTest, EveryFractionRoundTrips) {
  const double fraction = GetParam();
  crypto::KeyConfig config;
  core::TrustedDevice device(0xF8AC, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto* w = workloads::FindWorkload("bitcount");
  auto built = source.CompileAndPackage(
      w->source, core::EncryptionPolicy::PartialRandom(fraction));
  ASSERT_TRUE(built.ok());
  // Map density tracks the fraction.
  const auto& map = built->packaging.package.encryption_map;
  const double density =
      static_cast<double>(map.PopCount()) / map.size();
  EXPECT_NEAR(density, fraction, 0.12);
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, w->reference());
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionSweepTest,
                         ::testing::Values(0.05, 0.2, 0.35, 0.5, 0.65, 0.8,
                                           0.95),
                         [](const auto& info) {
                           return "f" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// --- PUF noise sweep --------------------------------------------------------------

class PufNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(PufNoiseTest, FuzzyExtractorSurvivesNoise) {
  puf::PkgConfig config;
  config.process.noise_sigma = GetParam();
  puf::PufKeyGenerator pkg(0x90158 + static_cast<uint64_t>(GetParam() * 100),
                           config);
  Xoshiro256 enroll_rng(1);
  const auto enrollment = pkg.Enroll(enroll_rng);
  int exact = 0;
  for (uint64_t powerup = 0; powerup < 8; ++powerup) {
    Xoshiro256 rng(50 + powerup);
    exact += pkg.RegenerateKey(enrollment.helper, rng) == enrollment.key;
  }
  EXPECT_EQ(exact, 8) << "noise " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PufNoiseTest,
                         ::testing::Values(0.01, 0.03, 0.06, 0.10, 0.15),
                         [](const auto& info) {
                           return "sigma" + std::to_string(static_cast<int>(
                                                info.param * 100));
                         });

TEST(PufNoiseTest, ReliabilityDegradesMonotonically) {
  double previous = 101.0;
  for (const double sigma : {0.02, 0.1, 0.3, 0.6}) {
    puf::PufStudyConfig config;
    config.devices = 24;
    config.challenges = 48;
    config.process.noise_sigma = sigma;
    const auto report = puf::CharacterizeArbiterPuf(config);
    EXPECT_LT(report.reliability_percent, previous) << sigma;
    previous = report.reliability_percent;
  }
}

// --- Cipher fragmentation property --------------------------------------------------

class FragmentationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentationTest, ArbitraryFragmentationEqualsWholeStream) {
  // Encrypting a buffer in random-sized fragments (at matching offsets)
  // must equal encrypting it in one call, for any fragmentation pattern.
  Xoshiro256 rng(GetParam());
  crypto::Key256 key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(rng.Next());
  }
  const crypto::XorCipher cipher(key);
  std::vector<uint8_t> data(777);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());

  auto whole = data;
  cipher.Apply(whole, 5);  // arbitrary base offset

  auto pieces = data;
  size_t offset = 0;
  while (offset < pieces.size()) {
    const size_t take =
        std::min<size_t>(1 + rng.NextBounded(40), pieces.size() - offset);
    cipher.Apply(std::span<uint8_t>(pieces.data() + offset, take),
                 5 + offset);
    offset += take;
  }
  EXPECT_EQ(pieces, whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Random-program differential property ------------------------------------------

// Generates random straight-line arithmetic EricC programs and checks the
// compiled/simulated result against direct expression evaluation.
class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, CompiledMatchesInterpreted) {
  Xoshiro256 rng(GetParam());
  // Build a chain: v0 = c0; v1 = v0 op c1; ... return vN % 100000;
  std::string source = "fn main() {\n  var v0 = " +
                       std::to_string(rng.NextBounded(1000)) + ";\n";
  int64_t value = 0;
  {
    // Recompute v0.
    Xoshiro256 replay(GetParam());
    value = static_cast<int64_t>(replay.NextBounded(1000));
    rng = replay;
  }
  const int steps = 20;
  for (int i = 1; i <= steps; ++i) {
    const uint64_t op = rng.NextBounded(6);
    const int64_t c = static_cast<int64_t>(rng.NextBounded(999)) + 1;
    const char* op_text;
    switch (op) {
      case 0: op_text = "+"; value = value + c; break;
      case 1: op_text = "-"; value = value - c; break;
      case 2: op_text = "*"; value = value * c; break;
      case 3: op_text = "/"; value = value / c; break;
      case 4: op_text = "^"; value = value ^ c; break;
      default: op_text = "&"; value = value & c; break;
    }
    source += "  var v" + std::to_string(i) + " = v" +
              std::to_string(i - 1) + " " + op_text + " " +
              std::to_string(c) + ";\n";
  }
  source += "  return v" + std::to_string(steps) + " % 100000;\n}\n";
  const int64_t expected = value % 100000;

  auto compiled = compiler::Compile(source);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  sim::Soc soc;
  soc.LoadProgram(compiled->program.image);
  const auto stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, sim::HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, expected) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(100, 120),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace eric
