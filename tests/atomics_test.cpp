// A-extension tests: encode/decode roundtrips, assembler syntax, and
// execution semantics (LR/SC reservations, AMO read-modify-write).
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/decoder.h"
#include "isa/disassembler.h"
#include "isa/encoder.h"
#include "sim/soc.h"

namespace eric::isa {
namespace {

void ExpectRoundtrip(const Instr& in) {
  Result<uint32_t> word = Encode32(in);
  ASSERT_TRUE(word.ok()) << OpName(in.op);
  const Instr out = Decode32(*word);
  EXPECT_EQ(out.op, in.op) << OpName(in.op);
  EXPECT_EQ(out.rd, in.rd);
  EXPECT_EQ(out.rs1, in.rs1);
  EXPECT_EQ(out.rs2, in.rs2);
}

TEST(AtomicsEncodingTest, AllOpsRoundtrip) {
  for (int op = static_cast<int>(Op::kLrW);
       op <= static_cast<int>(Op::kAmoMaxuD); ++op) {
    const Op o = static_cast<Op>(op);
    const uint8_t rs2 = (o == Op::kLrW || o == Op::kLrD) ? 0 : 12;
    ExpectRoundtrip(MakeR(o, 10, 11, rs2));
  }
}

TEST(AtomicsEncodingTest, LrRequiresZeroRs2) {
  EXPECT_FALSE(Encode32(MakeR(Op::kLrW, 10, 11, 5)).ok());
}

TEST(AtomicsEncodingTest, ClassifiedAtomic) {
  EXPECT_EQ(ClassOf(Op::kAmoAddW), OpClass::kAtomic);
  EXPECT_EQ(ClassOf(Op::kScD), OpClass::kAtomic);
  EXPECT_FALSE(IsMemoryAccess(Op::kAmoAddW));  // policy class is distinct
}

TEST(AtomicsEncodingTest, NoCompressedForms) {
  EXPECT_FALSE(TryEncodeCompressed(MakeR(Op::kAmoAddW, 9, 9, 10)).has_value());
}

TEST(AtomicsEncodingTest, Disassembly) {
  EXPECT_EQ(Disassemble(MakeR(Op::kLrW, 10, 11, 0)), "lr.w a0, (a1)");
  EXPECT_EQ(Disassemble(MakeR(Op::kAmoAddD, 10, 11, 12)),
            "amoadd.d a0, a2, (a1)");
}

}  // namespace
}  // namespace eric::isa

namespace eric::sim {
namespace {

using isa::Assemble;
using isa::EncodeProgram;

ExecStats RunAsm(const std::string& source, uint64_t arg0 = 0) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(EncodeProgram(assembled->instructions, false, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  return soc.Run(kRamBase, arg0);
}

TEST(AtomicsExecTest, AmoAddReturnsOldValue) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 100
    sd t1, 0(t0)
    li t2, 42
    amoadd.d a0, t2, (t0)   # a0 = old (100); mem = 142
    ld t3, 0(t0)
    add a0, a0, t3          # 100 + 142
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 242);
}

TEST(AtomicsExecTest, AmoSwap) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 7
    sd t1, 0(t0)
    li t2, 9
    amoswap.d a0, t2, (t0)   # a0 = 7; mem = 9
    ld t3, 0(t0)
    slli a0, a0, 8
    or a0, a0, t3            # 0x709
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0x709);
}

TEST(AtomicsExecTest, AmoMinMaxSigned) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, -5
    sd t1, 0(t0)
    li t2, 3
    amomax.d a0, t2, (t0)    # mem = max(-5,3) = 3; a0 = -5
    ld a0, 0(t0)
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 3);
}

TEST(AtomicsExecTest, AmoMinuUnsigned) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, -1               # unsigned max
    sd t1, 0(t0)
    li t2, 10
    amominu.d a0, t2, (t0)  # mem = min_u(~0, 10) = 10
    ld a0, 0(t0)
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 10);
}

TEST(AtomicsExecTest, AmoAddWSignExtendsOldValue) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 1
    slli t1, t1, 31         # 0x80000000: negative as i32
    sd t1, 0(t0)
    li t2, 0
    amoadd.w a0, t2, (t0)   # a0 = sext32(0x80000000)
    srai a0, a0, 62         # all sign bits -> -1... (>>62 of INT32_MIN*2^32?)
    ecall
  )");
  // a0 was 0xFFFFFFFF80000000; >>62 arithmetic = -1.
  EXPECT_EQ(stats.exit_code, -1);
}

TEST(AtomicsExecTest, LrScSuccessPath) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 5
    sd t1, 0(t0)
    lr.d t2, (t0)           # reserve, t2 = 5
    addi t2, t2, 1
    sc.d a0, t2, (t0)       # success: a0 = 0, mem = 6
    ld t3, 0(t0)
    slli t3, t3, 4
    or a0, a0, t3           # 0x60
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0x60);
}

TEST(AtomicsExecTest, ScWithoutReservationFails) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 9
    sc.d a0, t1, (t0)       # no reservation: a0 = 1, mem untouched
    ld t2, 0(t0)
    slli t2, t2, 4
    or a0, a0, t2           # 0x01
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0x01);
}

TEST(AtomicsExecTest, ScToDifferentAddressFails) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 0x30000
    lr.d t2, (t0)           # reserve t0
    li t3, 77
    sc.d a0, t3, (t1)       # different address: fails
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 1);
}

TEST(AtomicsExecTest, ScConsumesReservation) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    lr.d t1, (t0)
    sc.d t2, t1, (t0)       # succeeds, consumes reservation
    sc.d a0, t1, (t0)       # second sc fails
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 1);
}

TEST(AtomicsExecTest, AtomicIncrementLoop) {
  // The classic LR/SC retry loop (trivially succeeds on one hart, but
  // exercises the full reservation path repeatedly).
  const ExecStats stats = RunAsm(R"(
    li t0, 0x20000
    li t1, 100
  loop:
    lr.d t2, (t0)
    addi t2, t2, 3
    sc.d t3, t2, (t0)
    bnez t3, loop           # retry on failure
    addi t1, t1, -1
    bnez t1, loop
    ld a0, 0(t0)
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 300);
}

}  // namespace
}  // namespace eric::sim
