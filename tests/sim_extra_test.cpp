// Additional simulator coverage: CSRs, MMIO loads, page-boundary
// behaviour, compressed execution paths, and timing-model corners.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/encoder.h"
#include "sim/soc.h"

namespace eric::sim {
namespace {

using isa::Assemble;
using isa::EncodeProgram;

ExecStats RunAsm(const std::string& source, uint64_t arg0 = 0) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(EncodeProgram(assembled->instructions, false, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  return soc.Run(kRamBase, arg0);
}

TEST(CsrTest, CycleCounterReadsNonZero) {
  const ExecStats stats = RunAsm(R"(
    nop
    nop
    csrrs a0, 0xC00, zero    # rdcycle
    ecall
  )");
  EXPECT_GT(static_cast<uint64_t>(stats.exit_code), 0u);
}

TEST(CsrTest, InstretCountsInstructions) {
  const ExecStats stats = RunAsm(R"(
    nop
    nop
    nop
    csrrs a0, 0xC02, zero    # rdinstret: 3 nops retired before this
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 3);
}

TEST(CsrTest, UnknownCsrReadsZero) {
  const ExecStats stats = RunAsm(R"(
    li a0, 55
    csrrs a0, 0x123, zero
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(MmioTest, DeviceLoadsReadZero) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x10000000
    ld a0, 0(t0)       # console reads as zero
    ld t1, 8(t0)       # exit device reads as zero (does not halt)
    add a0, a0, t1
    addi a0, a0, 9
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 9);
}

TEST(MemoryTest, PageBoundaryStraddlingAccess) {
  Memory m;
  const uint64_t addr = 0x8000'0FFE;  // last 2 bytes of a page
  m.Write(addr, 0x1122334455667788ull, 8);
  EXPECT_EQ(m.Read(addr, 8), 0x1122334455667788ull);
  EXPECT_EQ(m.Read(addr + 4, 4), 0x11223344u);
}

TEST(ExecTest, InstructionStraddlingCacheLine) {
  // Pad with nops so a 4-byte instruction starts 2 bytes before a 64-byte
  // line boundary (compressed-nop padding), then verify execution.
  std::vector<isa::Instr> program;
  // 31 compressed nops = 62 bytes. addi (4 bytes) straddles byte 64.
  for (int i = 0; i < 31; ++i) program.push_back(isa::MakeNop());
  program.push_back(isa::MakeI(isa::Op::kAddi, 10, 0, 42));
  program.push_back(isa::MakeEcall());
  std::vector<uint8_t> bytes;
  // Compress: nops become c.nop (2 bytes each).
  ASSERT_TRUE(EncodeProgram(program, true, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  const ExecStats stats = soc.Run();
  EXPECT_EQ(stats.exit_code, 42);
}

TEST(ExecTest, MixedWidthDenseLoop) {
  // Compressed and wide instructions interleaved in a loop body; the
  // fetch path must track 2/4-byte increments exactly.
  std::vector<isa::Instr> program = {
      isa::MakeI(isa::Op::kAddi, 10, 0, 0),    // a0 = 0       (c.li)
      isa::MakeI(isa::Op::kAddi, 5, 0, 10),    // t0 = 10      (c.li)
      // loop:
      isa::MakeR(isa::Op::kMul, 6, 5, 5),      // t1 = t0*t0   (4B)
      isa::MakeR(isa::Op::kAdd, 10, 10, 6),    // a0 += t1     (c.add)
      isa::MakeI(isa::Op::kAddi, 5, 5, -1),    // t0 -= 1      (c.addi)
      isa::MakeBranch(isa::Op::kBne, 5, 0, -8),  // mul(4)+add(2)+addi(2)=8
      isa::MakeEcall(),
  };
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeProgram(program, true, bytes).ok());
  // Verify expected widths: li,li compressed; mul wide; add,addi
  // compressed; bne wide (offset -10 fits but rs2 must be x0 and offset
  // range ok -> c.bnez possible: rs1=t0=x5 not in x8..15, so wide).
  Soc soc;
  soc.LoadProgram(bytes);
  const ExecStats stats = soc.Run();
  // sum of squares 1..10 = 385.
  EXPECT_EQ(stats.exit_code, 385);
}

TEST(TimingTest, TakenBranchCostsMoreThanNotTaken) {
  // Same instruction counts; one loop's branch is taken 199/200 times,
  // the other is a straight line of untaken branches.
  const ExecStats taken = RunAsm(R"(
    li t0, 200
  loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  const ExecStats untaken = RunAsm(R"(
    li t0, 200
  loop:
    addi t0, t0, -1
    beqz t0, out       # not taken until the end
    bnez t0, loop
  out:
    ecall
  )");
  const double taken_cpi =
      static_cast<double>(taken.cycles) / taken.instructions;
  (void)untaken;
  EXPECT_GT(taken_cpi, 1.0);
}

TEST(TimingTest, ModeledSecondsScaleWithCycles) {
  EXPECT_DOUBLE_EQ(Soc::CyclesToSeconds(25'000'000), 1.0);
  EXPECT_DOUBLE_EQ(Soc::CyclesToSeconds(0), 0.0);
}

TEST(ExecTest, ArgumentsAndExitPath) {
  // a0/a1 arrive; exit code is a0 at ecall.
  const ExecStats stats = RunAsm(R"(
    slli a0, a0, 4
    ecall
  )", 5);
  EXPECT_EQ(stats.exit_code, 80);
}

TEST(ExecTest, StackGrowsDownwardFromConfiguredTop) {
  const ExecStats stats = RunAsm(R"(
    mv a0, sp
    srli a0, a0, 20    # megabytes
    ecall
  )");
  EXPECT_EQ(static_cast<uint64_t>(stats.exit_code), kStackTop >> 20);
}

TEST(ExecTest, FenceIsANoOpFunctionally) {
  const ExecStats stats = RunAsm(R"(
    li a0, 1
    fence
    addi a0, a0, 1
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 2);
}

TEST(ExecTest, JalrClearsLowBit) {
  // jalr must clear bit 0 of the target (spec) — jump to an odd address
  // rounds down to the even halfword.
  const ExecStats stats = RunAsm(R"(
    auipc t0, 0
    addi t0, t0, 13     # target+1 (odd): bit 0 cleared -> target = +12
    jalr zero, 0(t0)
    ecall               # at +12: skipped? no: 3 instrs = 12 bytes, lands here
  )");
  // auipc(4) + addi(4) + jalr(4) = 12; target 12 is the ecall.
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
}

}  // namespace
}  // namespace eric::sim
