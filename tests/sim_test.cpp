// Tests for the SoC simulator: functional semantics via assembly programs,
// cache behaviour, MMIO devices, timing-model invariants.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/encoder.h"
#include "sim/cache.h"
#include "sim/memory.h"
#include "sim/soc.h"

namespace eric::sim {
namespace {

using isa::Assemble;
using isa::EncodeProgram;

// Assembles and runs a program; returns the exec stats. Programs end with
// `ecall` (halt, exit code = a0).
ExecStats RunAsm(const std::string& source, uint64_t arg0 = 0,
                 uint64_t arg1 = 0, bool compress = false) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  std::vector<uint8_t> bytes;
  auto offsets = EncodeProgram(assembled->instructions, compress, bytes);
  EXPECT_TRUE(offsets.ok()) << offsets.status().ToString();
  Soc soc;
  soc.LoadProgram(bytes);
  return soc.Run(kRamBase, arg0, arg1);
}

TEST(MemoryTest, ReadBackWrites) {
  Memory m;
  m.Write(0x8000'0000, 0x1122334455667788ull, 8);
  EXPECT_EQ(m.Read(0x8000'0000, 8), 0x1122334455667788ull);
  EXPECT_EQ(m.Read(0x8000'0000, 4), 0x55667788ull);
  EXPECT_EQ(m.Read(0x8000'0004, 4), 0x11223344ull);
  EXPECT_EQ(m.Read(0x8000'0000, 1), 0x88ull);
}

TEST(MemoryTest, UnmappedReadsZero) {
  Memory m;
  EXPECT_EQ(m.Read(0x1234'5678, 8), 0u);
  EXPECT_EQ(m.ResidentPages(), 0u);
}

TEST(MemoryTest, CrossPageBlock) {
  Memory m;
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  m.WriteBlock(0x8000'0F00, data);
  EXPECT_EQ(m.ReadBlock(0x8000'0F00, data.size()), data);
  EXPECT_GE(m.ResidentPages(), 3u);
}

TEST(CacheTest, RepeatAccessHits) {
  Cache c;
  c.Access(0x1000);           // miss
  const uint32_t t = c.Access(0x1000);  // hit
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(t, c.config().hit_cycles);
}

TEST(CacheTest, SameLineHits) {
  Cache c;
  c.Access(0x1000);
  c.Access(0x103F);  // same 64-byte line
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(CacheTest, LruEviction) {
  CacheConfig cfg;
  cfg.size_bytes = 4 * 64;  // 1 set x 4 ways... make sets=1
  cfg.ways = 4;
  cfg.line_bytes = 64;
  Cache c(cfg);
  // Fill 4 ways of set 0.
  for (uint64_t i = 0; i < 4; ++i) c.Access(i * 64);
  c.Access(0);          // touch line 0 (most recent)
  c.Access(4 * 64);     // evicts LRU = line 1
  EXPECT_EQ(c.Access(0), cfg.hit_cycles);           // still resident
  EXPECT_EQ(c.Access(1 * 64), cfg.miss_cycles);     // was evicted
}

TEST(CacheTest, FlushInvalidatesAll) {
  Cache c;
  c.Access(0x2000);
  c.Flush();
  c.Access(0x2000);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheTest, MissRate) {
  Cache c;
  c.Access(0);
  c.Access(0);
  c.Access(0);
  c.Access(64);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

// --- Core functional tests -----------------------------------------------

TEST(CpuTest, ArithmeticAndExit) {
  const ExecStats stats = RunAsm(R"(
    li a0, 5
    addi a0, a0, 37
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 42);
}

TEST(CpuTest, ArgumentsArriveInA0A1) {
  const ExecStats stats = RunAsm(R"(
    add a0, a0, a1
    ecall
  )", 30, 12);
  EXPECT_EQ(stats.exit_code, 42);
}

TEST(CpuTest, LoopCountsCorrectly) {
  const ExecStats stats = RunAsm(R"(
    li t0, 100
    li a0, 0
  loop:
    addi a0, a0, 2
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 200);
  EXPECT_GT(stats.taken_branches, 90u);
}

TEST(CpuTest, MemoryRoundtrip) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x1234
    sd t0, -16(sp)
    ld a0, -16(sp)
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0x1234);
}

TEST(CpuTest, ByteAndHalfAccess) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x1ff
    sb t0, -8(sp)      # stores 0xff
    lbu a0, -8(sp)
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0xFF);
}

TEST(CpuTest, SignExtendingLoads) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x80
    sb t0, -8(sp)
    lb a0, -8(sp)      # sign-extends to -128
    ecall
  )");
  EXPECT_EQ(stats.exit_code, -128);
}

TEST(CpuTest, MulDiv) {
  const ExecStats stats = RunAsm(R"(
    li t0, 6
    li t1, 7
    mul a0, t0, t1
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 42);
}

TEST(CpuTest, DivByZeroFollowsSpec) {
  const ExecStats stats = RunAsm(R"(
    li t0, 5
    li t1, 0
    div a0, t0, t1     # RISC-V: -1 on divide by zero
    ecall
  )");
  EXPECT_EQ(stats.exit_code, -1);
}

TEST(CpuTest, RemByZeroReturnsDividend) {
  const ExecStats stats = RunAsm(R"(
    li t0, 5
    li t1, 0
    rem a0, t0, t1
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 5);
}

TEST(CpuTest, DivOverflowCase) {
  // INT64_MIN / -1 must return INT64_MIN (no trap).
  const ExecStats stats = RunAsm(R"(
    li t0, 1
    slli t0, t0, 63    # INT64_MIN
    li t1, -1
    div a0, t0, t1
    srli a0, a0, 63    # isolate the sign bit: expect 1
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 1);
}

TEST(CpuTest, CallAndReturn) {
  const ExecStats stats = RunAsm(R"(
    call double_it
    ecall
  double_it:
    slli a0, a0, 1
    ret
  )", 21);
  EXPECT_EQ(stats.exit_code, 42);
}

TEST(CpuTest, ShiftsAndLogic) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0xF0
    li t1, 0x0F
    or t2, t0, t1      # 0xFF
    xor t2, t2, t1     # 0xF0
    srli a0, t2, 4     # 0x0F
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 0x0F);
}

TEST(CpuTest, SltVariants) {
  const ExecStats stats = RunAsm(R"(
    li t0, -1
    li t1, 1
    slt t2, t0, t1     # 1 (signed)
    sltu t3, t0, t1    # 0 (unsigned: t0 is huge)
    slli t2, t2, 1
    or a0, t2, t3      # expect 2
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 2);
}

TEST(CpuTest, WordOps32BitWrap) {
  const ExecStats stats = RunAsm(R"(
    li t0, 0x7fffffff
    addiw a0, t0, 1     # wraps to INT32_MIN, sign-extended
    srai a0, a0, 31     # all ones
    andi a0, a0, 1
    ecall
  )");
  EXPECT_EQ(stats.exit_code, 1);
}

TEST(CpuTest, EbreakHalts) {
  const ExecStats stats = RunAsm("ebreak\n");
  EXPECT_EQ(stats.halt_reason, HaltReason::kEbreak);
}

TEST(CpuTest, InvalidInstructionHalts) {
  Soc soc;
  const std::vector<uint8_t> junk = {0xFF, 0xFF, 0xFF, 0xFF};
  soc.LoadProgram(junk);
  const ExecStats stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, HaltReason::kInvalidInstruction);
}

TEST(CpuTest, InstructionLimitStopsRunaway) {
  ExecLimits limits;
  limits.max_instructions = 1000;
  auto assembled = Assemble("loop: j loop\n");
  ASSERT_TRUE(assembled.ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeProgram(assembled->instructions, false, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  const ExecStats stats = soc.Run(kRamBase, 0, 0, limits);
  EXPECT_EQ(stats.halt_reason, HaltReason::kInstructionLimit);
  EXPECT_EQ(stats.instructions, 1000u);
}

TEST(CpuTest, CompressedProgramRunsIdentically) {
  // Straight-line only: the assembler resolves labels assuming 4-byte
  // encodings, so branchy code must use compress=false (the compiler's
  // backend, which relaxes layout, owns the compressed-branch case).
  const std::string source = R"(
    li t0, 10
    li a0, 0
    add a0, a0, t0
    addi t0, t0, -3
    add a0, a0, t0
    ecall
  )";
  const ExecStats wide = RunAsm(source, 0, 0, /*compress=*/false);
  const ExecStats narrow = RunAsm(source, 0, 0, /*compress=*/true);
  EXPECT_EQ(wide.exit_code, 17);
  EXPECT_EQ(narrow.exit_code, 17);
  EXPECT_EQ(wide.instructions, narrow.instructions);
}

// --- MMIO devices -----------------------------------------------------------

TEST(SocTest, ConsoleOutput) {
  auto assembled = Assemble(R"(
    li t0, 0x10000000
    li t1, 72          # 'H'
    sb t1, 0(t0)
    li t1, 105         # 'i'
    sb t1, 0(t0)
    ecall
  )");
  ASSERT_TRUE(assembled.ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeProgram(assembled->instructions, false, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  soc.Run();
  EXPECT_EQ(soc.console_output(), "Hi");
}

TEST(SocTest, ExitDeviceHaltsWithCode) {
  auto assembled = Assemble(R"(
    li t0, 0x10000000
    li t1, 7
    sd t1, 8(t0)
    li a0, 99          # never reached
    ecall
  )");
  ASSERT_TRUE(assembled.ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeProgram(assembled->instructions, false, bytes).ok());
  Soc soc;
  soc.LoadProgram(bytes);
  const ExecStats stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 7);
}

// --- Timing model invariants -------------------------------------------------

TEST(TimingTest, CyclesAtLeastInstructions) {
  const ExecStats stats = RunAsm(R"(
    li t0, 50
  loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  EXPECT_GE(stats.cycles, stats.instructions);
}

TEST(TimingTest, DivSlowerThanAdd) {
  const std::string adds = R"(
    li t0, 200
  loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )";
  const std::string divs = R"(
    li t0, 200
  loop:
    div t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )";
  const ExecStats a = RunAsm(adds);
  const ExecStats d = RunAsm(divs);
  EXPECT_EQ(a.instructions, d.instructions);
  EXPECT_GT(d.cycles, a.cycles);
}

TEST(TimingTest, IcacheWarmsUp) {
  const ExecStats stats = RunAsm(R"(
    li t0, 1000
  loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  // The tight loop fits in one or two I-cache lines: hit rate near 100 %.
  EXPECT_LT(stats.icache.miss_rate(), 0.01);
}

TEST(TimingTest, ColdDcacheMissesThenHits) {
  const ExecStats stats = RunAsm(R"(
    li t0, 64
    li t1, 0x20000
  loop:
    ld t2, 0(t1)
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  EXPECT_EQ(stats.dcache.misses, 1u);  // one cold miss, then hits
  EXPECT_EQ(stats.dcache.hits, 63u);
}

// --- RV32I execution mode ---------------------------------------------------

// Assembles and runs a program on an RV32I core. Programs are encoded
// uncompressed (RV32I has no C extension); the base-format encodings are
// shared with RV64, so the plain encoder produces valid RV32 words for
// RV32-legal instructions.
ExecStats RunAsmRv32(const std::string& source, uint64_t arg0 = 0,
                     uint64_t arg1 = 0) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  std::vector<uint8_t> bytes;
  auto offsets =
      EncodeProgram(assembled->instructions, /*compress=*/false, bytes);
  EXPECT_TRUE(offsets.ok()) << offsets.status().ToString();
  Soc soc({}, isa::IsaId::kRv32I);
  soc.LoadProgram(bytes);
  return soc.Run(kRamBase, arg0, arg1);
}

TEST(Rv32ExecTest, ArithmeticWrapsAtThirtyTwoBits) {
  // -2^31 + -2^31 = -2^32, which is 0 mod 2^32. A 64-bit core would
  // return -2^32; the RV32 core must re-canonicalize to 0.
  const ExecStats stats = RunAsmRv32(R"(
    lui a0, -0x80000
    add a0, a0, a0
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(Rv32ExecTest, RegistersHoldSignExtendedThirtyTwoBitValues) {
  // lui -0x80000 loads INT32_MIN; srai by 31 smears the sign bit.
  const ExecStats stats = RunAsmRv32(R"(
    lui a0, -0x80000
    srai a0, a0, 31
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, -1);
}

TEST(Rv32ExecTest, LogicalShiftRightIsThirtyTwoBitWide) {
  // 0xFFFFFFFF >> 4 must be 0x0FFFFFFF on a 32-bit core. The 64-bit
  // shift-then-truncate shortcut would produce 0xFFFFFFFF (the high
  // sign-extension bits shifting back in), so this pins the explicit
  // 32-bit path.
  const ExecStats stats = RunAsmRv32(R"(
    li a0, -1
    srli a0, a0, 4
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 0x0FFFFFFF);
}

TEST(Rv32ExecTest, UnsignedCompareSeesThirtyTwoBitOrdering) {
  // On RV32, -1 is the largest unsigned value; sltu must agree even
  // though registers hold the sign-extended 64-bit pattern internally.
  const ExecStats stats = RunAsmRv32(R"(
    li t0, -1
    li t1, 1
    sltu a0, t1, t0
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 1);
}

TEST(Rv32ExecTest, WordLoadStoreRoundtrip) {
  const ExecStats stats = RunAsmRv32(R"(
    li t0, 0x20000
    lui t1, 0x12345
    addi t1, t1, 0x678
    sw t1, 0(t0)
    lw a0, 0(t0)
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kExit);
  EXPECT_EQ(stats.exit_code, 0x12345678);
}

TEST(Rv32ExecTest, SixtyFourBitOnlyInstructionHaltsCore) {
  // `ld` is a valid RV64 encoding but illegal on RV32I: the core must
  // halt fail-closed, never misread it as a different width.
  const ExecStats stats = RunAsmRv32(R"(
    li t1, 0x20000
    ld a0, 0(t1)
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kInvalidInstruction);
}

TEST(Rv32ExecTest, MultiplyInstructionHaltsCore) {
  // RV32I carries no M extension; a stray `mul` encoding is illegal.
  const ExecStats stats = RunAsmRv32(R"(
    li t0, 6
    li t1, 7
    mul a0, t0, t1
    ecall
  )");
  EXPECT_EQ(stats.halt_reason, HaltReason::kInvalidInstruction);
}

TEST(Rv32ExecTest, CompressedEncodingsHaltCore) {
  // The same program compressed for RV64GC must refuse to execute on an
  // RV32I core (no C extension): fail closed at the first 16-bit word.
  auto assembled = Assemble(R"(
    li a0, 7
    ecall
  )");
  ASSERT_TRUE(assembled.ok());
  std::vector<uint8_t> bytes;
  auto offsets =
      EncodeProgram(assembled->instructions, /*compress=*/true, bytes);
  ASSERT_TRUE(offsets.ok());
  Soc soc({}, isa::IsaId::kRv32I);
  soc.LoadProgram(bytes);
  const ExecStats stats = soc.Run(kRamBase, 0, 0);
  EXPECT_EQ(stats.halt_reason, HaltReason::kInvalidInstruction);
}

TEST(Rv32ExecTest, SameProgramMatchesRv64ForThirtyTwoBitCleanCode) {
  // A 32-bit-clean loop (sum 1..100) must compute the identical result
  // on both cores — the heterogeneity contract the mixed-fleet e2e
  // relies on.
  const std::string source = R"(
    li a0, 0
    li t0, 100
  loop:
    add a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )";
  const ExecStats rv64 = RunAsm(source);
  const ExecStats rv32 = RunAsmRv32(source);
  EXPECT_EQ(rv64.halt_reason, HaltReason::kExit);
  EXPECT_EQ(rv32.halt_reason, HaltReason::kExit);
  EXPECT_EQ(rv64.exit_code, 5050);
  EXPECT_EQ(rv32.exit_code, 5050);
}

}  // namespace
}  // namespace eric::sim
