// Unit + property tests for the RISC-V ISA layer: encode/decode roundtrips
// (32-bit and compressed), field extraction, assembler, disassembler.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/decoder.h"
#include "isa/disassembler.h"
#include "isa/encoder.h"
#include "isa/isa_backend.h"
#include "support/hex.h"
#include "support/rng.h"

namespace eric::isa {
namespace {

// Round-trips an instruction through Encode32 -> Decode32 and compares the
// semantic fields.
void ExpectRoundtrip32(const Instr& in) {
  Result<uint32_t> word = Encode32(in);
  ASSERT_TRUE(word.ok()) << OpName(in.op) << ": " << word.status().ToString();
  const Instr out = Decode32(*word);
  EXPECT_EQ(out.op, in.op) << Disassemble(in);
  EXPECT_EQ(out.rd, in.rd) << Disassemble(in);
  EXPECT_EQ(out.rs1, in.rs1) << Disassemble(in);
  EXPECT_EQ(out.rs2, in.rs2) << Disassemble(in);
  EXPECT_EQ(out.imm, in.imm) << Disassemble(in);
}

TEST(Encode32Test, BasicAlu) {
  ExpectRoundtrip32(MakeI(Op::kAddi, 10, 11, 42));
  ExpectRoundtrip32(MakeI(Op::kAddi, 10, 11, -2048));
  ExpectRoundtrip32(MakeI(Op::kAndi, 5, 6, -1));
  ExpectRoundtrip32(MakeR(Op::kAdd, 1, 2, 3));
  ExpectRoundtrip32(MakeR(Op::kSub, 31, 30, 29));
  ExpectRoundtrip32(MakeI(Op::kSlli, 7, 7, 63));
  ExpectRoundtrip32(MakeI(Op::kSrai, 7, 7, 63));
}

TEST(Encode32Test, UpperImmediates) {
  ExpectRoundtrip32(MakeLui(10, 0x7FFFF));
  ExpectRoundtrip32(MakeLui(10, -0x80000));
  ExpectRoundtrip32(MakeAuipc(11, 12345));
}

TEST(Encode32Test, LoadsAndStores) {
  for (Op op : {Op::kLb, Op::kLh, Op::kLw, Op::kLd, Op::kLbu, Op::kLhu,
                Op::kLwu}) {
    ExpectRoundtrip32(MakeLoad(op, 10, 2, 2047));
    ExpectRoundtrip32(MakeLoad(op, 10, 2, -2048));
  }
  for (Op op : {Op::kSb, Op::kSh, Op::kSw, Op::kSd}) {
    ExpectRoundtrip32(MakeStore(op, 10, 2, 2047));
    ExpectRoundtrip32(MakeStore(op, 10, 2, -2048));
  }
}

TEST(Encode32Test, Branches) {
  for (Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu,
                Op::kBgeu}) {
    ExpectRoundtrip32(MakeBranch(op, 1, 2, 4094));
    ExpectRoundtrip32(MakeBranch(op, 1, 2, -4096));
    ExpectRoundtrip32(MakeBranch(op, 1, 2, 0));
  }
}

TEST(Encode32Test, Jumps) {
  ExpectRoundtrip32(MakeJal(1, 1048574));
  ExpectRoundtrip32(MakeJal(0, -1048576));
  ExpectRoundtrip32(MakeJalr(1, 5, -4));
}

TEST(Encode32Test, MExtension) {
  for (Op op : {Op::kMul, Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv,
                Op::kDivu, Op::kRem, Op::kRemu, Op::kMulw, Op::kDivw,
                Op::kDivuw, Op::kRemw, Op::kRemuw}) {
    ExpectRoundtrip32(MakeR(op, 10, 11, 12));
  }
}

TEST(Encode32Test, WForms) {
  for (Op op : {Op::kAddw, Op::kSubw, Op::kSllw, Op::kSrlw, Op::kSraw}) {
    ExpectRoundtrip32(MakeR(op, 3, 4, 5));
  }
  ExpectRoundtrip32(MakeI(Op::kAddiw, 3, 4, -7));
  ExpectRoundtrip32(MakeI(Op::kSlliw, 3, 4, 31));
  ExpectRoundtrip32(MakeI(Op::kSraiw, 3, 4, 31));
}

TEST(Encode32Test, System) {
  ExpectRoundtrip32(MakeEcall());
  ExpectRoundtrip32(MakeEbreak());
}

TEST(Encode32Test, RejectsOutOfRangeImmediates) {
  EXPECT_FALSE(Encode32(MakeI(Op::kAddi, 1, 1, 2048)).ok());
  EXPECT_FALSE(Encode32(MakeI(Op::kAddi, 1, 1, -2049)).ok());
  EXPECT_FALSE(Encode32(MakeBranch(Op::kBeq, 1, 2, 4096)).ok());
  EXPECT_FALSE(Encode32(MakeBranch(Op::kBeq, 1, 2, 3)).ok());  // odd
  EXPECT_FALSE(Encode32(MakeJal(1, 1 << 21)).ok());
  EXPECT_FALSE(Encode32(MakeI(Op::kSlli, 1, 1, 64)).ok());
}

TEST(Encode32Test, RejectsInvalidOp) {
  Instr bad;
  EXPECT_FALSE(Encode32(bad).ok());
}

// --- Compressed forms -------------------------------------------------------

// Round-trips through TryEncodeCompressed -> DecodeCompressed.
void ExpectRoundtripC(const Instr& in) {
  const auto c16 = TryEncodeCompressed(in);
  ASSERT_TRUE(c16.has_value()) << Disassemble(in);
  const Instr out = DecodeCompressed(*c16);
  EXPECT_TRUE(out.compressed);
  EXPECT_EQ(out.op, in.op) << Disassemble(in) << " -> " << Disassemble(out);
  EXPECT_EQ(out.rd, in.rd) << Disassemble(in);
  EXPECT_EQ(out.rs1, in.rs1) << Disassemble(in);
  EXPECT_EQ(out.rs2, in.rs2) << Disassemble(in);
  EXPECT_EQ(out.imm, in.imm) << Disassemble(in);
}

TEST(CompressedTest, CAddi) { ExpectRoundtripC(MakeI(Op::kAddi, 9, 9, -3)); }
TEST(CompressedTest, CLi) { ExpectRoundtripC(MakeI(Op::kAddi, 9, 0, 31)); }
TEST(CompressedTest, CAddi16Sp) {
  ExpectRoundtripC(MakeI(Op::kAddi, 2, 2, -64));
  ExpectRoundtripC(MakeI(Op::kAddi, 2, 2, 496));
}
TEST(CompressedTest, CAddi4Spn) {
  ExpectRoundtripC(MakeI(Op::kAddi, 8, 2, 4));
  ExpectRoundtripC(MakeI(Op::kAddi, 15, 2, 1020));
}
TEST(CompressedTest, CAddiw) { ExpectRoundtripC(MakeI(Op::kAddiw, 9, 9, 5)); }
TEST(CompressedTest, CLui) { ExpectRoundtripC(MakeLui(5, -1)); }
TEST(CompressedTest, CSlli) { ExpectRoundtripC(MakeI(Op::kSlli, 5, 5, 40)); }
TEST(CompressedTest, CSrliSrai) {
  ExpectRoundtripC(MakeI(Op::kSrli, 9, 9, 17));
  ExpectRoundtripC(MakeI(Op::kSrai, 9, 9, 63));
}
TEST(CompressedTest, CAndi) { ExpectRoundtripC(MakeI(Op::kAndi, 10, 10, -17)); }
TEST(CompressedTest, CRegReg) {
  for (Op op : {Op::kSub, Op::kXor, Op::kOr, Op::kAnd, Op::kSubw,
                Op::kAddw}) {
    ExpectRoundtripC(MakeR(op, 9, 9, 12));
  }
}
TEST(CompressedTest, CMvAdd) {
  ExpectRoundtripC(MakeR(Op::kAdd, 5, 0, 6));   // c.mv
  ExpectRoundtripC(MakeR(Op::kAdd, 5, 5, 6));   // c.add
}
TEST(CompressedTest, CLoadsStores) {
  ExpectRoundtripC(MakeLoad(Op::kLw, 9, 10, 64));
  ExpectRoundtripC(MakeLoad(Op::kLd, 9, 10, 248));
  ExpectRoundtripC(MakeStore(Op::kSw, 9, 10, 124));
  ExpectRoundtripC(MakeStore(Op::kSd, 9, 10, 0));
}
TEST(CompressedTest, CSpRelative) {
  ExpectRoundtripC(MakeLoad(Op::kLw, 20, 2, 252));
  ExpectRoundtripC(MakeLoad(Op::kLd, 20, 2, 504));
  ExpectRoundtripC(MakeStore(Op::kSw, 20, 2, 252));
  ExpectRoundtripC(MakeStore(Op::kSd, 20, 2, 504));
}
TEST(CompressedTest, CJumps) {
  ExpectRoundtripC(MakeJal(0, -2048));          // c.j
  ExpectRoundtripC(MakeJal(0, 2046));
  ExpectRoundtripC(MakeJalr(0, 5, 0));          // c.jr
  ExpectRoundtripC(MakeJalr(1, 5, 0));          // c.jalr
}
TEST(CompressedTest, CBranches) {
  ExpectRoundtripC(MakeBranch(Op::kBeq, 9, 0, -256));
  ExpectRoundtripC(MakeBranch(Op::kBne, 9, 0, 254));
}
TEST(CompressedTest, CEbreak) { ExpectRoundtripC(MakeEbreak()); }

TEST(CompressedTest, IneligibleFormsReturnNullopt) {
  // Wrong register class for c.sub.
  EXPECT_FALSE(TryEncodeCompressed(MakeR(Op::kSub, 5, 5, 6)).has_value());
  // Immediate too large for c.addi.
  EXPECT_FALSE(TryEncodeCompressed(MakeI(Op::kAddi, 9, 9, 100)).has_value());
  // Unaligned load offset.
  EXPECT_FALSE(
      TryEncodeCompressed(MakeLoad(Op::kLd, 9, 10, 4)).has_value());
  // jalr with nonzero offset.
  EXPECT_FALSE(TryEncodeCompressed(MakeJalr(0, 5, 8)).has_value());
  // No compressed form at all.
  EXPECT_FALSE(TryEncodeCompressed(MakeR(Op::kMul, 9, 9, 10)).has_value());
}

TEST(CompressedTest, ZeroHalfwordIsInvalid) {
  EXPECT_EQ(DecodeCompressed(0).op, Op::kInvalid);
}

// Property sweep: every 16-bit pattern either decodes to kInvalid or, when
// re-encoded from its decoded form, decodes to the same semantics.
TEST(CompressedTest, ExhaustiveDecodeIsTotal) {
  int valid = 0;
  for (uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    if ((raw & 0b11) == 0b11) continue;  // 32-bit marker, not RVC
    const Instr in = DecodeCompressed(static_cast<uint16_t>(raw));
    if (in.op == Op::kInvalid) continue;
    ++valid;
    // Whatever decoded must also encode in 32-bit form (semantics valid).
    const auto word = Encode32(in);
    EXPECT_TRUE(word.ok()) << Hex32(raw) << " " << Disassemble(in);
  }
  // RVC space is dense: tens of thousands of the 49k non-wide patterns
  // decode.
  EXPECT_GT(valid, 20000);
}

// --- Stream decoding --------------------------------------------------------

TEST(DecoderTest, StreamMixesWidths) {
  std::vector<Instr> program = {
      MakeI(Op::kAddi, 10, 0, 5),   // compressible (c.li)
      MakeR(Op::kMul, 10, 10, 10),  // 4-byte only
      MakeEbreak(),                 // c.ebreak
  };
  std::vector<uint8_t> bytes;
  auto offsets = EncodeProgram(program, /*compress=*/true, bytes);
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ(bytes.size(), 2u + 4u + 2u);

  auto decoded = DecodeStream(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].op, Op::kAddi);
  EXPECT_TRUE((*decoded)[0].compressed);
  EXPECT_EQ((*decoded)[1].op, Op::kMul);
  EXPECT_FALSE((*decoded)[1].compressed);
  EXPECT_EQ((*decoded)[2].op, Op::kEbreak);
}

TEST(DecoderTest, TruncatedStreamFails) {
  std::vector<uint8_t> bytes = {0x13};  // half of an addi
  EXPECT_FALSE(DecodeStream(bytes).ok());
}

TEST(DecoderTest, DecodeAtRejectsShortBuffer) {
  std::vector<uint8_t> bytes = {0x93, 0x00};  // 32-bit marker, 2 bytes only
  EXPECT_FALSE(DecodeAt(bytes, 0).ok());
}

// --- Classification ----------------------------------------------------------

TEST(ClassTest, MemoryAccessDetection) {
  EXPECT_TRUE(IsMemoryAccess(Op::kLd));
  EXPECT_TRUE(IsMemoryAccess(Op::kSb));
  EXPECT_FALSE(IsMemoryAccess(Op::kAdd));
  EXPECT_FALSE(IsMemoryAccess(Op::kJal));
}

TEST(ClassTest, ControlFlowDetection) {
  EXPECT_TRUE(IsControlFlow(Op::kBeq));
  EXPECT_TRUE(IsControlFlow(Op::kJalr));
  EXPECT_FALSE(IsControlFlow(Op::kLd));
}

TEST(ClassTest, EveryOpHasNameAndClass) {
  for (int op = 1; op <= static_cast<int>(Op::kRemuw); ++op) {
    EXPECT_NE(OpName(static_cast<Op>(op)), "<invalid>");
    EXPECT_NE(ClassOf(static_cast<Op>(op)), OpClass::kInvalid);
  }
}

// --- Register names -----------------------------------------------------------

TEST(RegNameTest, AbiRoundtrip) {
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ParseRegName(AbiRegName(static_cast<uint8_t>(i))), i);
  }
}

TEST(RegNameTest, NumericAndAliases) {
  EXPECT_EQ(ParseRegName("x0"), 0);
  EXPECT_EQ(ParseRegName("x31"), 31);
  EXPECT_EQ(ParseRegName("fp"), 8);
  EXPECT_EQ(ParseRegName("x32"), -1);
  EXPECT_EQ(ParseRegName("bogus"), -1);
}

// --- Assembler -----------------------------------------------------------------

TEST(AssemblerTest, BasicProgram) {
  auto result = Assemble(R"(
    # compute 5 + 7
    li a0, 5
    addi a0, a0, 7
    ecall
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->instructions.size(), 3u);
  EXPECT_EQ(result->instructions[0].op, Op::kAddi);
  EXPECT_EQ(result->instructions[1].imm, 7);
  EXPECT_EQ(result->instructions[2].op, Op::kEcall);
}

TEST(AssemblerTest, LabelsAndBranches) {
  auto result = Assemble(R"(
    li t0, 3
  loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // bnez is instruction 2 (index), loop label at instruction 1 -> -4 bytes.
  EXPECT_EQ(result->instructions[2].op, Op::kBne);
  EXPECT_EQ(result->instructions[2].imm, -4);
}

TEST(AssemblerTest, MemoryOperands) {
  auto result = Assemble("ld a0, 16(sp)\nsd a1, -8(s0)\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->instructions[0].op, Op::kLd);
  EXPECT_EQ(result->instructions[0].imm, 16);
  EXPECT_EQ(result->instructions[1].op, Op::kSd);
  EXPECT_EQ(result->instructions[1].imm, -8);
  EXPECT_EQ(result->instructions[1].rs1, 8);
}

TEST(AssemblerTest, LargeLiExpandsToLuiAddiw) {
  auto result = Assemble("li a0, 0x12345\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->instructions.size(), 2u);
  EXPECT_EQ(result->instructions[0].op, Op::kLui);
  EXPECT_EQ(result->instructions[1].op, Op::kAddiw);
}

TEST(AssemblerTest, PseudoInstructions) {
  auto result = Assemble(R"(
    nop
    mv a0, a1
    not a2, a3
    neg a4, a5
    seqz a6, a7
    snez t0, t1
    jr ra
    ret
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->instructions.size(), 8u);
  EXPECT_EQ(result->instructions[0].op, Op::kAddi);
  EXPECT_EQ(result->instructions[6].op, Op::kJalr);
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(Assemble("bogus a0, a1\n").ok());
  EXPECT_FALSE(Assemble("addi a0\n").ok());
  EXPECT_FALSE(Assemble("j missing_label\n").ok());
  EXPECT_FALSE(Assemble("x: nop\nx: nop\n").ok());  // duplicate label
  EXPECT_FALSE(Assemble("ld a0, 8[sp]\n").ok());    // bad mem syntax
}

// --- Disassembler ----------------------------------------------------------------

TEST(DisassemblerTest, Formats) {
  EXPECT_EQ(Disassemble(MakeI(Op::kAddi, 10, 11, 42)), "addi a0, a1, 42");
  EXPECT_EQ(Disassemble(MakeLoad(Op::kLw, 10, 2, 8)), "lw a0, 8(sp)");
  EXPECT_EQ(Disassemble(MakeStore(Op::kSd, 10, 2, -16)), "sd a0, -16(sp)");
  EXPECT_EQ(Disassemble(MakeBranch(Op::kBeq, 5, 6, 64)), "beq t0, t1, 64");
  EXPECT_EQ(Disassemble(MakeEcall()), "ecall");
  EXPECT_EQ(Disassemble(MakeR(Op::kMul, 1, 2, 3)), "mul ra, sp, gp");
}

TEST(DisassemblerTest, StreamWithAddresses) {
  std::vector<uint8_t> bytes;
  auto offsets = EncodeProgram({MakeNop(), MakeEcall()}, false, bytes);
  ASSERT_TRUE(offsets.ok());
  const std::string text = DisassembleStream(bytes, 0x1000);
  EXPECT_NE(text.find("0x0000000000001000"), std::string::npos);
  EXPECT_NE(text.find("ecall"), std::string::npos);
}

// --- Randomized encode/decode property ----------------------------------------

TEST(PropertyTest, RandomRTypeRoundtrip) {
  Xoshiro256 rng(42);
  const Op ops[] = {Op::kAdd, Op::kSub, Op::kXor, Op::kOr, Op::kAnd,
                    Op::kSll, Op::kSrl, Op::kSra, Op::kSlt, Op::kSltu,
                    Op::kMul, Op::kDiv};
  for (int i = 0; i < 500; ++i) {
    const Instr in = MakeR(ops[rng.NextBounded(12)],
                           static_cast<uint8_t>(rng.NextBounded(32)),
                           static_cast<uint8_t>(rng.NextBounded(32)),
                           static_cast<uint8_t>(rng.NextBounded(32)));
    ExpectRoundtrip32(in);
  }
}

TEST(PropertyTest, RandomITypeRoundtrip) {
  Xoshiro256 rng(43);
  for (int i = 0; i < 500; ++i) {
    const int64_t imm = static_cast<int64_t>(rng.NextBounded(4096)) - 2048;
    ExpectRoundtrip32(MakeI(Op::kAddi,
                            static_cast<uint8_t>(rng.NextBounded(32)),
                            static_cast<uint8_t>(rng.NextBounded(32)), imm));
  }
}

TEST(PropertyTest, RandomBranchRoundtrip) {
  Xoshiro256 rng(44);
  for (int i = 0; i < 500; ++i) {
    const int64_t imm =
        (static_cast<int64_t>(rng.NextBounded(4096)) - 2048) * 2;
    ExpectRoundtrip32(MakeBranch(Op::kBne,
                                 static_cast<uint8_t>(rng.NextBounded(32)),
                                 static_cast<uint8_t>(rng.NextBounded(32)),
                                 imm));
  }
}

// --- ISA backends -----------------------------------------------------------

TEST(IsaBackendTest, Identity) {
  const IsaBackend& rv64 = BackendFor(IsaId::kRv64Gc);
  EXPECT_EQ(rv64.id(), IsaId::kRv64Gc);
  EXPECT_EQ(rv64.name(), "rv64gc");
  EXPECT_EQ(rv64.xlen(), 64u);
  EXPECT_EQ(rv64.word_bytes(), 8u);
  EXPECT_TRUE(rv64.supports_compressed());

  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  EXPECT_EQ(rv32.id(), IsaId::kRv32I);
  EXPECT_EQ(rv32.name(), "rv32i");
  EXPECT_EQ(rv32.xlen(), 32u);
  EXPECT_EQ(rv32.word_bytes(), 4u);
  EXPECT_FALSE(rv32.supports_compressed());

  // Singletons: repeated lookups hand back the same object.
  EXPECT_EQ(&BackendFor(IsaId::kRv32I), &rv32);
  EXPECT_EQ(&BackendFor(IsaId::kRv64Gc), &rv64);
}

TEST(IsaBackendTest, NamesRoundtrip) {
  EXPECT_EQ(IsaName(IsaId::kRv64Gc), "rv64gc");
  EXPECT_EQ(IsaName(IsaId::kRv32I), "rv32i");
  ASSERT_TRUE(ParseIsaName("rv64gc").has_value());
  EXPECT_EQ(*ParseIsaName("rv64gc"), IsaId::kRv64Gc);
  ASSERT_TRUE(ParseIsaName("rv32i").has_value());
  EXPECT_EQ(*ParseIsaName("rv32i"), IsaId::kRv32I);
  EXPECT_FALSE(ParseIsaName("rv128").has_value());
  EXPECT_FALSE(ParseIsaName("").has_value());
}

TEST(IsaBackendTest, WireValidation) {
  ASSERT_TRUE(IsaFromWire(0).has_value());
  EXPECT_EQ(*IsaFromWire(0), IsaId::kRv64Gc);
  ASSERT_TRUE(IsaFromWire(1).has_value());
  EXPECT_EQ(*IsaFromWire(1), IsaId::kRv32I);
  // Every other byte value is unclaimed and must fail validation —
  // this is what keeps a corrupted snapshot or package flag byte from
  // silently becoming an ISA.
  for (int value = 2; value < 256; ++value) {
    EXPECT_FALSE(IsaFromWire(static_cast<uint8_t>(value)).has_value())
        << value;
  }
}

TEST(IsaBackendTest, Rv64FullOpCoverage) {
  const IsaBackend& rv64 = BackendFor(IsaId::kRv64Gc);
  for (Op op : {Op::kLd, Op::kSd, Op::kLwu, Op::kAddw, Op::kMul, Op::kDivu,
                Op::kAmoAddW, Op::kLrD}) {
    EXPECT_TRUE(rv64.SupportsOp(op)) << OpName(op);
  }
  EXPECT_FALSE(rv64.SupportsOp(Op::kInvalid));
  // The backend is a strict delegate of the existing codec.
  const Instr ld = MakeLoad(Op::kLd, 10, 2, 8);
  auto direct = Encode32(ld);
  auto via_backend = rv64.Encode(ld);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_backend.ok());
  EXPECT_EQ(*direct, *via_backend);
  EXPECT_EQ(rv64.Decode(*direct).op, Op::kLd);
}

TEST(IsaBackendTest, Rv32RejectsSixtyFourBitOnlyOps) {
  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  // 64-bit-only loads/stores, W forms, M, and A must all be refused at
  // encode time (kInvalidArgument, fail closed) and be unsupported.
  for (Op op : {Op::kLd, Op::kLwu, Op::kAddw, Op::kSubw, Op::kSllw,
                Op::kMul, Op::kMulh, Op::kDiv, Op::kDivu, Op::kRem,
                Op::kRemu, Op::kMulw, Op::kAmoAddW, Op::kAmoSwapW,
                Op::kLrW, Op::kScW}) {
    EXPECT_FALSE(rv32.SupportsOp(op)) << OpName(op);
    auto encoded = op == Op::kLd || op == Op::kLwu
                       ? rv32.Encode(MakeLoad(op, 10, 2, 0))
                       : rv32.Encode(MakeR(op, 10, 11, 12));
    ASSERT_FALSE(encoded.ok()) << OpName(op);
    EXPECT_EQ(encoded.status().code(), ErrorCode::kInvalidArgument)
        << OpName(op);
  }
  ASSERT_FALSE(rv32.Encode(MakeStore(Op::kSd, 10, 2, 0)).ok());
}

TEST(IsaBackendTest, Rv32DecodesForeignEncodingsAsInvalid) {
  const IsaBackend& rv64 = BackendFor(IsaId::kRv64Gc);
  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  // Valid RV64 bit patterns that name 64-bit-only operations must decode
  // to kInvalid on RV32 — never to a silently different operation.
  for (const Instr& in :
       {MakeLoad(Op::kLd, 10, 2, 8), MakeStore(Op::kSd, 10, 2, 8),
        MakeR(Op::kMul, 10, 11, 12), MakeR(Op::kAddw, 10, 11, 12)}) {
    auto word = rv64.Encode(in);
    ASSERT_TRUE(word.ok()) << OpName(in.op);
    const Instr out = rv32.Decode(*word);
    EXPECT_EQ(out.op, Op::kInvalid) << OpName(in.op);
    EXPECT_EQ(out.raw, *word) << OpName(in.op);
  }
}

TEST(IsaBackendTest, Rv32ShiftAmountFailsClosedBothDirections) {
  const IsaBackend& rv64 = BackendFor(IsaId::kRv64Gc);
  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  for (Op op : {Op::kSlli, Op::kSrli, Op::kSrai}) {
    // shamt 31 is the RV32 maximum and must round-trip.
    auto ok31 = rv32.Encode(MakeI(op, 7, 7, 31));
    ASSERT_TRUE(ok31.ok()) << OpName(op);
    EXPECT_EQ(rv32.Decode(*ok31).imm, 31) << OpName(op);
    // shamt 32..63 encodes on RV64 (6-bit field) but is an illegal
    // encoding on RV32: refused at encode, kInvalid at decode — never a
    // silent mod-32 shift.
    auto rejected = rv32.Encode(MakeI(op, 7, 7, 32));
    ASSERT_FALSE(rejected.ok()) << OpName(op);
    EXPECT_EQ(rejected.status().code(), ErrorCode::kInvalidArgument);
    auto wide = rv64.Encode(MakeI(op, 7, 7, 33));
    ASSERT_TRUE(wide.ok()) << OpName(op);
    EXPECT_EQ(rv32.Decode(*wide).op, Op::kInvalid) << OpName(op);
  }
}

TEST(IsaBackendTest, Rv32HasNoCompressedForms) {
  const IsaBackend& rv64 = BackendFor(IsaId::kRv64Gc);
  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  // An instruction RV64 happily compresses must stay 4 bytes on RV32.
  const Instr addi = MakeI(Op::kAddi, 10, 10, 4);
  EXPECT_TRUE(rv64.EncodeCompressed(addi).has_value());
  EXPECT_FALSE(rv32.EncodeCompressed(addi).has_value());
  // And a compressed half-word never decodes to anything executable.
  const auto half = *rv64.EncodeCompressed(addi);
  EXPECT_NE(rv64.DecodeCompressed(half).op, Op::kInvalid);
  EXPECT_EQ(rv32.DecodeCompressed(half).op, Op::kInvalid);
}

TEST(IsaBackendTest, Rv32SupportedOpsRoundtripThroughBackend) {
  const IsaBackend& rv32 = BackendFor(IsaId::kRv32I);
  for (const Instr& in :
       {MakeI(Op::kAddi, 10, 11, -2048), MakeR(Op::kSub, 1, 2, 3),
        MakeR(Op::kSltu, 4, 5, 6), MakeLoad(Op::kLw, 10, 2, 2047),
        MakeStore(Op::kSw, 10, 2, -2048), MakeBranch(Op::kBltu, 1, 2, -4096),
        MakeJal(1, 2048), MakeJalr(1, 5, -4), MakeLui(10, 0x7FFFF),
        MakeI(Op::kSrai, 7, 7, 31)}) {
    auto word = rv32.Encode(in);
    ASSERT_TRUE(word.ok()) << OpName(in.op) << ": "
                           << word.status().ToString();
    const Instr out = rv32.Decode(*word);
    EXPECT_EQ(out.op, in.op) << Disassemble(in);
    EXPECT_EQ(out.rd, in.rd) << Disassemble(in);
    EXPECT_EQ(out.rs1, in.rs1) << Disassemble(in);
    EXPECT_EQ(out.rs2, in.rs2) << Disassemble(in);
    EXPECT_EQ(out.imm, in.imm) << Disassemble(in);
  }
}

}  // namespace
}  // namespace eric::isa
