#!/usr/bin/env python3
"""Self-test for tools/bench_compare.py's failure handling.

The comparator is a CI gate: when it is fed a damaged bench JSON it must
fail with a clear message and a nonzero exit, never with a traceback (a
traceback reads as "the gate is broken", not "the bench regressed").
Each case builds a tiny baseline/current pair in a temp dir and asserts
on the exit code and on what the output does (and does not) contain.

Usage: bench_compare_test.py [/path/to/bench_compare.py]
"""

import json
import os
import subprocess
import sys
import tempfile

GOOD_STORE = {
    "pass": True,
    "recovery_max_ratio": 1.0,
    "group_commit_speedup": 1.2,
}


def run_compare(script, baseline, current):
    return subprocess.run(
        [sys.executable, script,
         "--baseline-dir", baseline, "--current-dir", current],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=60)


def write(dirname, name, payload):
    path = os.path.join(dirname, name)
    with open(path, "w") as f:
        if isinstance(payload, str):
            f.write(payload)
        else:
            json.dump(payload, f)
    return path


def case(script, name, baseline_doc, current_doc, want_exit, want_text):
    with tempfile.TemporaryDirectory(prefix="eric-bench-compare-") as work:
        baseline_dir = os.path.join(work, "baseline")
        current_dir = os.path.join(work, "current")
        os.makedirs(baseline_dir)
        os.makedirs(current_dir)
        write(baseline_dir, "BENCH_store.json", baseline_doc)
        write(current_dir, "BENCH_store.json", current_doc)
        result = run_compare(script, baseline_dir, current_dir)
    ok = result.returncode == want_exit
    if "Traceback" in result.stdout:
        print("FAIL %s: comparator raised a traceback:\n%s" %
              (name, result.stdout))
        return False
    if want_text and want_text not in result.stdout:
        print("FAIL %s: output lacks %r:\n%s" %
              (name, want_text, result.stdout))
        return False
    if not ok:
        print("FAIL %s: exit %d, wanted %d:\n%s" %
              (name, result.returncode, want_exit, result.stdout))
        return False
    print("ok   %s" % name)
    return True


def main():
    script = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "tools",
        "bench_compare.py")

    bad_metric = dict(GOOD_STORE)
    del bad_metric["recovery_max_ratio"]
    non_numeric = dict(GOOD_STORE, group_commit_speedup="fast")
    non_numeric_base = dict(GOOD_STORE, recovery_max_ratio=True)

    results = [
        case(script, "clean pair passes", GOOD_STORE, GOOD_STORE, 0, "PASS"),
        case(script, "missing metric in fresh output", GOOD_STORE,
             bad_metric, 1, "vanished from fresh output"),
        case(script, "non-numeric fresh metric", GOOD_STORE, non_numeric, 1,
             "is not numeric"),
        case(script, "non-numeric (bool) baseline metric", non_numeric_base,
             GOOD_STORE, 1, "is not numeric"),
        case(script, "malformed fresh JSON", GOOD_STORE, "{not json",
             1, "unreadable JSON"),
        case(script, "non-object baseline JSON", [1, 2, 3], GOOD_STORE,
             1, "expected a JSON object"),
        case(script, "bench self-reported failure", GOOD_STORE,
             dict(GOOD_STORE, **{"pass": False}), 1,
             "acceptance criterion"),
        case(script, "regression beyond threshold", GOOD_STORE,
             dict(GOOD_STORE, recovery_max_ratio=5.0), 1, "REGRESSION"),
        # The scannable summary line: present on clean runs (nothing
        # moved) and naming the worst metric when something regressed.
        case(script, "summary line on clean run", GOOD_STORE, GOOD_STORE, 0,
             "summary: 2 metric(s) compared, no metric moved in the bad "
             "direction"),
        case(script, "summary line names worst regression", GOOD_STORE,
             dict(GOOD_STORE, recovery_max_ratio=5.0), 1,
             "summary: 2 metric(s) compared, worst regression +400.0% "
             "(BENCH_store.json recovery_max_ratio)"),
        # A small regression inside the threshold still shows up in the
        # summary while the run passes.
        case(script, "summary reports sub-threshold movement", GOOD_STORE,
             dict(GOOD_STORE, recovery_max_ratio=1.2), 0,
             "worst regression +20.0%"),
    ]
    if all(results):
        print("PASS: %d bench_compare self-test cases" % len(results))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
