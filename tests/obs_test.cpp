// Observability tests: histogram percentiles against a sorted-vector
// oracle (property sweep over several duration distributions), the
// metrics registry hammered from many threads, trace-context
// propagation through a real faulty-channel campaign, and the snapshot
// exporter's on-disk artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/deployment_engine.h"
#include "fleet/dispatch_governor.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/bench_json.h"
#include "support/json_escape.h"

namespace eric::obs {
namespace {

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min_us, 0.0);
  EXPECT_EQ(snap.max_us, 0.0);
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_EQ(snap.Percentile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Record(123.0);  // microseconds
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min_us, 123.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 123.0);
  // With min == max the clamp pins every quantile to the sample.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 123.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 123.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 123.0);
}

TEST(HistogramTest, NegativeAndZeroClampToBucketZero) {
  Histogram h;
  h.Record(-5.0);
  h.RecordNanos(0);
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.max_us, 0.0);
  EXPECT_EQ(snap.Percentile(0.99), 0.0);
}

TEST(HistogramTest, BucketIndexIsBitWidthOfNanos) {
  Histogram h;
  const uint64_t samples[] = {1, 2, 3, 4, 7, 8, 1023, 1024};
  for (uint64_t ns : samples) h.RecordNanos(ns);
  const auto snap = h.Snapshot();
  std::vector<uint64_t> expected(Histogram::kBuckets, 0);
  for (uint64_t ns : samples) ++expected[std::bit_width(ns)];
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(snap.buckets[i], expected[i]) << "bucket " << i;
  }
}

TEST(HistogramTest, BucketUpperBoundsArePowersOfTwo) {
  // Bucket i's inclusive upper bound is (2^i - 1) ns; spot-check the
  // microsecond conversion the JSON snapshot publishes.
  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperUs(0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperUs(1), 0.001);
  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperUs(11), 2.047);
}

// Rank-based oracle percentile matching the histogram's convention:
// rank = ceil(q * count), clamped to [1, count], 1-indexed into the
// sorted sample list.
double OraclePercentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted_us.size()));
  const size_t index = static_cast<size_t>(
      std::clamp(rank, 1.0, static_cast<double>(sorted_us.size())));
  return sorted_us[index - 1];
}

// Power-of-two buckets bound the relative quantile error by 2x: the
// estimate interpolates inside the bucket that holds the rank-th
// sample, and a bucket's bounds are within a factor of two.
void ExpectWithin2x(double estimate, double oracle_us) {
  EXPECT_GE(estimate, oracle_us / 2.0 - 1e-9);
  EXPECT_LE(estimate, oracle_us * 2.0 + 1e-9);
}

TEST(HistogramTest, PercentileSweepAgainstSortedOracle) {
  std::mt19937_64 rng(0xE41C0BDULL);
  struct Case {
    const char* name;
    std::function<uint64_t()> draw_ns;
  };
  std::uniform_int_distribution<uint64_t> uniform(0, 2'000'000);
  std::uniform_real_distribution<double> log_exp(0.0, 30.0);
  std::uniform_int_distribution<uint64_t> tiny(0, 3);
  const Case cases[] = {
      {"uniform_us", [&] { return uniform(rng); }},
      {"log_uniform", [&] { return static_cast<uint64_t>(
                                std::exp2(log_exp(rng))); }},
      {"mostly_zero", [&] { return tiny(rng) == 0 ? uniform(rng) : 0; }},
  };
  const double quantiles[] = {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Histogram h;
    std::vector<double> oracle_us;
    for (int i = 0; i < 5000; ++i) {
      const uint64_t ns = c.draw_ns();
      h.RecordNanos(ns);
      oracle_us.push_back(static_cast<double>(ns) / 1000.0);
    }
    std::sort(oracle_us.begin(), oracle_us.end());

    const auto snap = h.Snapshot();
    ASSERT_EQ(snap.count, oracle_us.size());
    uint64_t bucket_sum = 0;
    for (uint64_t b : snap.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, snap.count);
    EXPECT_DOUBLE_EQ(snap.min_us, oracle_us.front());
    EXPECT_DOUBLE_EQ(snap.max_us, oracle_us.back());

    double previous = -1.0;
    for (double q : quantiles) {
      SCOPED_TRACE(q);
      const double estimate = snap.Percentile(q);
      ExpectWithin2x(estimate, OraclePercentile(oracle_us, q));
      // Estimates are monotone in q and live inside [min, max].
      EXPECT_GE(estimate, previous);
      EXPECT_GE(estimate, snap.min_us);
      EXPECT_LE(estimate, snap.max_us);
      previous = estimate;
    }
  }
}

TEST(HistogramTest, ConcurrentRecordKeepsInvariants) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(0xBEEF + static_cast<uint64_t>(t));
      std::uniform_int_distribution<uint64_t> dist(0, 1'000'000);
      for (int i = 0; i < kPerThread; ++i) h.RecordNanos(dist(rng));
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, snap.count);
  EXPECT_LE(snap.min_us, snap.max_us);
  EXPECT_LE(snap.Percentile(0.5), snap.Percentile(0.99));
}

// --- Metric names ------------------------------------------------------------

TEST(MetricNameTest, ValidatesShape) {
  EXPECT_TRUE(IsValidMetricName("fleet_seal_us"));
  EXPECT_TRUE(IsValidMetricName("a"));
  EXPECT_TRUE(IsValidMetricName("x9_y"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("Fleet_seal"));   // uppercase
  EXPECT_FALSE(IsValidMetricName("_leading"));     // must start [a-z]
  EXPECT_FALSE(IsValidMetricName("9lives"));       // leading digit
  EXPECT_FALSE(IsValidMetricName("dotted.name"));  // no dots
  EXPECT_FALSE(IsValidMetricName(std::string(121, 'a')));
  EXPECT_TRUE(IsValidMetricName(std::string(120, 'a')));
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(&registry.GetCounter("obs_test_identity"),
            &registry.GetCounter("obs_test_identity"));
  EXPECT_EQ(&registry.GetHistogram("obs_test_identity_h"),
            &registry.GetHistogram("obs_test_identity_h"));
  EXPECT_EQ(&registry.GetGauge("obs_test_identity_g"),
            &registry.GetGauge("obs_test_identity_g"));
}

TEST(MetricsRegistryTest, ConcurrentLookupAndRecord) {
  auto& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  // Fresh names per run: the global registry outlives this test, so the
  // assertion is over names only this test touches.
  const std::string prefix = "obs_test_hammer_";
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &prefix] {
      for (int i = 0; i < kOps; ++i) {
        // Resolve by name every iteration: the lookup path itself is
        // what this test hammers (ASan/UBSan cover the map + lock).
        registry.GetCounter(prefix + std::to_string(i % 5)).Add(1);
        registry.GetHistogram(prefix + "h").Record(static_cast<double>(i));
        registry.GetGauge(prefix + "g").Add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  uint64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    total += registry.GetCounter(prefix + std::to_string(i)).value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(registry.GetHistogram(prefix + "h").count(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(registry.GetGauge(prefix + "g").value(), 0);
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesSchemaAndInstruments) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test_json_counter").Add(7);
  registry.GetHistogram("obs_test_json_hist").Record(42.0);

  JsonWriter json;
  registry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"schema\":\"eric.metrics.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test_json_counter\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test_json_hist\""), std::string::npos);
  EXPECT_NE(text.find("\"p99_us\""), std::string::npos);
  // Sequence numbers strictly increase across snapshots.
  JsonWriter second;
  registry.WriteJson(second);
  EXPECT_NE(second.str(), text);
}

TEST(MetricsRegistryTest, PrometheusTextListsInstruments) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test_prom_counter").Add(1);
  registry.GetHistogram("obs_test_prom_hist").Record(10.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count"), std::string::npos);
}

// --- Trace collector ---------------------------------------------------------

TEST(TraceTest, SpanIsInertWhenDisabled) {
  auto& collector = TraceCollector::Global();
  collector.Disable();
  (void)collector.Drain();
  TraceScope scope(collector.BeginTrace(), 0);
  ScopedSpan span("inert");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.span_id(), 0u);
}

TEST(TraceTest, SpanIsInertWithoutThreadContext) {
  auto& collector = TraceCollector::Global();
  collector.Enable();
  (void)collector.Drain();
  ScopedSpan span("no_context");  // no TraceScope installed
  EXPECT_FALSE(span.active());
  collector.Disable();
  EXPECT_TRUE(collector.Drain().empty());
}

TEST(TraceTest, NestedSpansFormAParentChain) {
  auto& collector = TraceCollector::Global();
  collector.Enable();
  (void)collector.Drain();
  const uint64_t trace = collector.BeginTrace();

  uint64_t outer_id = 0;
  {
    TraceScope scope(trace, /*parent_span=*/7);
    ScopedSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    EXPECT_EQ(CurrentParentSpanId(), outer_id);
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(CurrentParentSpanId(), inner.span_id());
      inner.set_ok(false);
    }
    EXPECT_EQ(CurrentParentSpanId(), outer_id);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);  // scope restored

  auto spans = collector.Drain();
  collector.Disable();
  ASSERT_EQ(spans.size(), 2u);  // inner emits first (destruction order)
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_FALSE(spans[0].ok);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 7u);
  EXPECT_TRUE(spans[1].ok);
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, trace);
    EXPECT_GE(span.duration_us, 0.0);
  }
}

TEST(TraceTest, BufferOverflowDropsAndCounts) {
  auto& collector = TraceCollector::Global();
  collector.Enable(/*max_spans=*/2);
  (void)collector.Drain();
  const uint64_t dropped_before = collector.spans_dropped();
  for (int i = 0; i < 5; ++i) {
    SpanRecord record;
    record.trace_id = 1;
    record.span_id = static_cast<uint64_t>(i + 1);
    record.name = "overflow";
    collector.Emit(std::move(record));
  }
  auto spans = collector.Drain();
  collector.Disable();
  EXPECT_EQ(spans.size(), 2u);
  EXPECT_EQ(collector.spans_dropped() - dropped_before, 3u);
}

// --- Span propagation through a real campaign --------------------------------

constexpr const char* kTraceProgram = R"(
  fn main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) { sum = sum + i * i; i = i + 1; }
    return sum;
  }
)";

TEST(TraceCampaignTest, FaultyCampaignSpansReconstructDeliveryTree) {
  auto& collector = TraceCollector::Global();
  collector.Enable();
  (void)collector.Drain();

  fleet::DeviceRegistry registry;
  const fleet::GroupId group = registry.CreateGroup("traced");
  std::vector<fleet::DeviceId> devices;
  for (int i = 0; i < 6; ++i) {
    auto id = registry.Enroll(0x7A0 + static_cast<uint64_t>(i), group);
    ASSERT_TRUE(id.ok());
    devices.push_back(*id);
  }

  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);
  fleet::CampaignConfig config;
  config.source = kTraceProgram;
  config.devices = devices;
  config.workers = 3;
  config.max_attempts = 4;
  config.channel.fault = net::ChannelFault::kRandomBitFlips;
  config.fault_rate = 0.5;

  auto report = engine.Run(config);
  auto spans = collector.Drain();
  collector.Disable();
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->trace_id, 0u);

  // Every span belongs to this campaign's trace, with unique ids.
  std::set<uint64_t> span_ids;
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, report->trace_id);
    EXPECT_TRUE(span_ids.insert(span.span_id).second);
  }

  auto ids_of = [&](const char* name) {
    std::set<uint64_t> ids;
    for (const auto& span : spans) {
      if (span.name == name) ids.insert(span.span_id);
    }
    return ids;
  };
  auto spans_of = [&](const char* name) {
    std::vector<const SpanRecord*> out;
    for (const auto& span : spans) {
      if (span.name == name) out.push_back(&span);
    }
    return out;
  };

  // One root: the campaign span, parented at 0.
  const auto campaigns = spans_of("campaign");
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0]->parent_id, 0u);
  const uint64_t campaign_span = campaigns[0]->span_id;

  // One target span per device, all children of the campaign span.
  const auto targets = spans_of("target");
  EXPECT_EQ(targets.size(), devices.size());
  std::set<uint64_t> target_devices;
  for (const auto* span : targets) {
    EXPECT_EQ(span->parent_id, campaign_span);
    target_devices.insert(span->device);
  }
  EXPECT_EQ(target_devices.size(), devices.size());

  // Delivery attempts hang off targets; channel round-trips hang off
  // delivery attempts. Counts tie back to the campaign report.
  const auto target_ids = ids_of("target");
  const auto deliver_spans = spans_of("deliver");
  EXPECT_EQ(deliver_spans.size(), report->deliveries);
  size_t failed_attempts = 0;
  for (const auto* span : deliver_spans) {
    EXPECT_TRUE(target_ids.count(span->parent_id)) << "orphan deliver span";
    if (!span->ok) ++failed_attempts;
  }
  // Each delivered target's final attempt is its only ok one; failed
  // targets never produce an ok attempt.
  EXPECT_EQ(failed_attempts, report->deliveries - report->succeeded);

  const auto deliver_ids = ids_of("deliver");
  const auto channels = spans_of("channel");
  EXPECT_EQ(channels.size(), report->deliveries);
  for (const auto* span : channels) {
    EXPECT_TRUE(deliver_ids.count(span->parent_id)) << "orphan channel span";
  }

  // The encrypt-once cache compiles once and seals once (one group, one
  // key), inside some target's span tree.
  EXPECT_EQ(spans_of("compile").size(), 1u);
  EXPECT_EQ(spans_of("seal").size(), 1u);

  // Timing sanity: children start no earlier than the campaign root.
  for (const auto& span : spans) {
    if (span.span_id == campaign_span) continue;
    EXPECT_GE(span.start_us + 1e-3, campaigns[0]->start_us);
  }
}

// --- Export ------------------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ExportTest, SnapshotWritesJsonAndPrometheusAtomically) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test_export_counter").Add(3);

  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/obs_test_metrics.json";
  const std::string prom_path = dir + "/obs_test_metrics.prom";
  ASSERT_TRUE(WriteMetricsSnapshot(json_path, prom_path).ok());

  const std::string json = ReadWholeFile(json_path);
  EXPECT_NE(json.find("eric.metrics.v1"), std::string::npos);
  EXPECT_NE(json.find("obs_test_export_counter"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  const std::string prom = ReadWholeFile(prom_path);
  EXPECT_NE(prom.find("obs_test_export_counter"), std::string::npos);
  // No leftover temp file: the write is tmp + rename.
  EXPECT_FALSE(std::ifstream(json_path + ".tmp").good());

  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(ExportTest, SnapshotFailsOnUnwritablePath) {
  EXPECT_FALSE(
      WriteMetricsSnapshot("/nonexistent-dir/obs_test/metrics.json").ok());
}

TEST(ExportTest, TraceJsonlAppendsOneObjectPerSpan) {
  auto& collector = TraceCollector::Global();
  collector.Enable();
  (void)collector.Drain();
  {
    TraceScope scope(collector.BeginTrace(), 0);
    ScopedSpan a("jsonl_a");
    ScopedSpan b("jsonl_b");
  }
  const std::string path = ::testing::TempDir() + "/obs_test_spans.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(collector.AppendJsonl(path).ok());
  collector.Disable();

  const std::string text = ReadWholeFile(path);
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\":\"jsonl_a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"jsonl_b\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\":true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, ExporterTicksAndFinalFlushes) {
  auto& registry = MetricsRegistry::Global();
  auto& ticker = registry.GetCounter("obs_test_exporter_ticks");

  const std::string path = ::testing::TempDir() + "/obs_test_live.json";
  MetricsExporter exporter;
  MetricsExporter::Options options;
  options.json_path = path;
  options.interval_seconds = 0.01;
  ASSERT_TRUE(exporter.Start(options).ok());
  EXPECT_TRUE(exporter.running());
  // Double start is refused while running.
  EXPECT_FALSE(exporter.Start(options).ok());

  ticker.Add(41);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());

  // The final flush sees everything recorded before Stop().
  const std::string json = ReadWholeFile(path);
  EXPECT_NE(json.find("\"obs_test_exporter_ticks\":41"), std::string::npos);
  std::remove(path.c_str());
  std::remove((path + ".prom").c_str());
}

// --- Structured event log ----------------------------------------------------

TEST(EventLogTest, EmitRoundTripsAndTruncates) {
  EventLog log(8);
  log.Emit(EventSeverity::kWarn, "engine", "hello", 7, 42);
  const std::string longest(500, 'x');
  log.Emit(EventSeverity::kError, "a-subsystem-name-longer-than-the-field",
           longest);
  const auto snap = log.Snap();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.appended, 2u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.events[0].seq, 1u);
  EXPECT_EQ(snap.events[0].severity, EventSeverity::kWarn);
  EXPECT_EQ(snap.events[0].subsystem, "engine");
  EXPECT_EQ(snap.events[0].message, "hello");
  EXPECT_EQ(snap.events[0].device, 7u);
  EXPECT_EQ(snap.events[0].campaign, 42u);
  EXPECT_GE(snap.events[1].uptime_us, snap.events[0].uptime_us);
  // Fixed-width slots truncate, never overflow.
  EXPECT_EQ(snap.events[1].subsystem.size(), EventLog::kSubsystemBytes - 1);
  EXPECT_EQ(snap.events[1].message.size(), EventLog::kMessageBytes - 1);
  EXPECT_EQ(snap.events[1].message, longest.substr(0, EventLog::kMessageBytes - 1));
}

TEST(EventLogTest, OverflowKeepsNewestAndCountsDrops) {
  EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.Emit(EventSeverity::kInfo, "t", "event " + std::to_string(i));
  }
  const auto snap = log.Snap();
  EXPECT_EQ(snap.appended, 20u);
  EXPECT_LE(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped, snap.appended - snap.events.size());
  // Only the newest ring-capacity worth of events survives, in order.
  uint64_t previous_seq = 12;  // 20 - 8
  for (const EventRecord& event : snap.events) {
    EXPECT_GT(event.seq, previous_seq);
    previous_seq = event.seq;
  }
}

TEST(EventLogTest, SnapCapIsNotCountedAsLoss) {
  EventLog log(16);
  for (int i = 0; i < 10; ++i) {
    log.Emit(EventSeverity::kInfo, "t", "e");
  }
  const auto capped = log.Snap(3);
  EXPECT_EQ(capped.events.size(), 3u);
  EXPECT_EQ(capped.events.back().seq, 10u);
  // The caller's cap hides events; it does not lose them.
  EXPECT_EQ(capped.dropped, 0u);
}

TEST(EventLogTest, EightThreadHammerNeverTearsARecord) {
  EventLog log(64);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // device/campaign/message all encode (thread, i): a torn record
        // shows up as a cross-field mismatch below.
        log.Emit(EventSeverity::kInfo, "hammer",
                 "t" + std::to_string(t) + "-i" + std::to_string(i),
                 static_cast<uint64_t>(t), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(log.appended(), kThreads * kPerThread);
  const auto snap = log.Snap();
  EXPECT_EQ(snap.appended, kThreads * kPerThread);
  EXPECT_LE(snap.events.size(), 64u);
  EXPECT_EQ(snap.dropped, snap.appended - snap.events.size());
  uint64_t previous_seq = 0;
  for (const EventRecord& event : snap.events) {
    EXPECT_GT(event.seq, previous_seq);  // strictly ordered, no duplicates
    previous_seq = event.seq;
    EXPECT_LT(event.device, static_cast<uint64_t>(kThreads));
    EXPECT_LT(event.campaign, kPerThread);
    EXPECT_EQ(event.subsystem, "hammer");
    EXPECT_EQ(event.message, "t" + std::to_string(event.device) + "-i" +
                                 std::to_string(event.campaign))
        << "torn record at seq " << event.seq;
  }
}

TEST(EventLogTest, FatalEmitDumpsFlightRecord) {
  EventLog log(16);
  log.Emit(EventSeverity::kWarn, "net", "prelude");
  const std::string path = ::testing::TempDir() + "/obs_test_flight.json";
  std::remove(path.c_str());
  log.SetFlightRecorderPath(path);
  EXPECT_EQ(log.flight_records_written(), 0u);
  log.Emit(EventSeverity::kFatal, "store", "wal poisoned (test)");
  EXPECT_EQ(log.flight_records_written(), 1u);
  const std::string flight = ReadWholeFile(path);
  EXPECT_NE(flight.find("eric.events.v1"), std::string::npos);
  EXPECT_NE(flight.find("wal poisoned (test)"), std::string::npos);
  EXPECT_NE(flight.find("prelude"), std::string::npos);
  EXPECT_NE(flight.find("\"severity\":\"fatal\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, HostileMessageBytesStayEscapedInJson) {
  EventLog log(8);
  // Quotes, backslash, newline, a control byte, and a non-UTF8 byte.
  const std::string hostile = std::string("he said \"no\\go\"\nctl:") +
                              char(0x01) + "hi:" + char(0xFF);
  log.Emit(EventSeverity::kError, "net", hostile);
  JsonWriter json;
  WriteEventsJson(json, log.Snap(), log.capacity());
  const std::string text = json.str();
  EXPECT_NE(text.find("he said \\\"no\\\\go\\\"\\nctl:"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  // The raw newline and control byte must not survive into the document.
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text.find(char(0x01)), std::string::npos);
  // Non-UTF8 high bytes pass through opaquely (escaping is for structure).
  EXPECT_NE(text.find(char(0xFF)), std::string::npos);
}

TEST(EscapeTest, PromLabelEscapesStructuralBytes) {
  std::string out;
  AppendPromLabelEscaped(out, "a\"b\\c\nd");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd");
  EXPECT_EQ(PromLabelQuoted("x\"y"), "\"x\\\"y\"");
}

// --- SLO spec grammar ---------------------------------------------------------

TEST(SloSpecTest, ParsesFullRatioGrammar) {
  auto spec = ParseSloSpec(
      "failures=ratio(fleet_delivery_failures,fleet_delivery_attempts)"
      "<0.05@30s:pause;min=10");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "failures");
  EXPECT_EQ(spec->kind, SloKind::kRatio);
  EXPECT_EQ(spec->metric, "fleet_delivery_failures");
  EXPECT_EQ(spec->denominator, "fleet_delivery_attempts");
  EXPECT_DOUBLE_EQ(spec->threshold, 0.05);
  EXPECT_DOUBLE_EQ(spec->window_seconds, 30.0);
  EXPECT_EQ(spec->policy, BreachPolicy::kPause);
  EXPECT_EQ(spec->min_count, 10u);
}

TEST(SloSpecTest, DefaultsNamePolicyAndMin) {
  auto spec = ParseSloSpec("rate(agent_rollbacks)<2.5@30");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "agent_rollbacks_rate");
  EXPECT_EQ(spec->kind, SloKind::kRate);
  EXPECT_EQ(spec->policy, BreachPolicy::kLog);
  EXPECT_EQ(spec->min_count, 1u);
  EXPECT_DOUBLE_EQ(spec->window_seconds, 30.0);
}

TEST(SloSpecTest, ParsesQuantileKind) {
  auto spec = ParseSloSpec("p99(fleet_delivery_us)<50000@60s:abort");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, SloKind::kQuantile);
  EXPECT_DOUBLE_EQ(spec->quantile, 0.99);
  EXPECT_EQ(spec->name, "fleet_delivery_us_p99");
  EXPECT_EQ(spec->policy, BreachPolicy::kAbort);
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                      // nothing
      "ratio(a,b)",                            // no threshold
      "ratio(a)<0.1@30s",                      // ratio needs a denominator
      "blend(a)<0.1@30s",                      // unknown kind
      "p0(a)<1@30s",                           // quantile out of range
      "p100(a)<1@30s",                         // quantile out of range
      "rate(a)<0@30s",                         // threshold must be > 0
      "rate(a)<-1@30s",                        // threshold must be > 0
      "rate(a)<1@0s",                          // window must be > 0
      "rate(a)<1@30s:detonate",                // unknown policy
      "rate(a)<1@30s;min=0",                   // min >= 1
      "rate(a)<1@30s;min=1.5",                 // min integral
      "rate(a)<1@30sXtrailing",                // trailing garbage
      "rate(bad name!)<1@30s",                 // invalid metric name
      "=rate(a)<1@30s",                        // empty name
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseSloSpec(text).ok()) << "accepted: " << text;
  }
}

TEST(SloSpecTest, FormatRoundTripsThroughParse) {
  auto original = ParseSloSpec(
      "lat=p95(fleet_delivery_us)<2500@45s:pause;min=20");
  ASSERT_TRUE(original.ok());
  auto reparsed = ParseSloSpec(FormatSloSpec(*original));
  ASSERT_TRUE(reparsed.ok()) << FormatSloSpec(*original);
  EXPECT_EQ(reparsed->name, original->name);
  EXPECT_EQ(reparsed->kind, original->kind);
  EXPECT_EQ(reparsed->metric, original->metric);
  EXPECT_DOUBLE_EQ(reparsed->quantile, original->quantile);
  EXPECT_DOUBLE_EQ(reparsed->threshold, original->threshold);
  EXPECT_DOUBLE_EQ(reparsed->window_seconds, original->window_seconds);
  EXPECT_EQ(reparsed->policy, original->policy);
  EXPECT_EQ(reparsed->min_count, original->min_count);
}

// --- Windowed burn-rate math (hand-computed oracles) --------------------------

SloSpec RatioSpec(double threshold, double window, uint64_t min_count = 1) {
  SloSpec spec;
  spec.name = "test_ratio";
  spec.kind = SloKind::kRatio;
  spec.metric = "num";
  spec.denominator = "den";
  spec.threshold = threshold;
  spec.window_seconds = window;
  spec.min_count = min_count;
  return spec;
}

TEST(SloWindowTest, RatioBurnRateAgainstHandComputedSequence) {
  SloWindow window(RatioSpec(/*threshold=*/0.1, /*window=*/10.0));
  // t=0: baseline 0 failures / 0 attempts.
  auto state = window.Update(0.0, 0.0, 0.0);
  EXPECT_FALSE(state.breached);
  EXPECT_DOUBLE_EQ(state.observed, 0.0);
  // t=2: 2 failures over 40 attempts -> 0.05, half the budget.
  state = window.Update(2.0, 2.0, 40.0);
  EXPECT_DOUBLE_EQ(state.observed, 0.05);
  EXPECT_DOUBLE_EQ(state.burn_rate, 0.5);
  EXPECT_EQ(state.window_count, 40u);
  EXPECT_FALSE(state.breached);
  // t=4: 12 failures over 80 attempts -> 0.15, 1.5x budget. Breach.
  state = window.Update(4.0, 12.0, 80.0);
  EXPECT_DOUBLE_EQ(state.observed, 0.15);
  EXPECT_DOUBLE_EQ(state.burn_rate, 1.5);
  EXPECT_TRUE(state.breached);
}

TEST(SloWindowTest, OldSamplesRollOffTheWindow) {
  SloWindow window(RatioSpec(0.1, 10.0));
  (void)window.Update(0.0, 10.0, 100.0);   // an ugly past...
  (void)window.Update(5.0, 10.0, 100.0);   // ...that went quiet
  (void)window.Update(12.0, 10.0, 100.0);
  // t=16: the t=0 and t=5 samples are out of the 10s window; the
  // baseline is t=5 (the youngest sample at-or-before window start is
  // kept as the delta base)... actually t=5 <= 16-10=6, so t=5 drops
  // too and t=12 is the baseline. Delta vs t=12: 1 failure / 2 attempts.
  auto state = window.Update(16.0, 11.0, 102.0);
  EXPECT_DOUBLE_EQ(state.observed, 0.5);
  EXPECT_EQ(state.window_count, 2u);
  EXPECT_TRUE(state.breached);
}

TEST(SloWindowTest, CounterResetClearsTheWindow) {
  SloWindow window(RatioSpec(0.1, 30.0));
  (void)window.Update(0.0, 5.0, 50.0);
  (void)window.Update(1.0, 6.0, 60.0);
  // The process restarted: totals went backwards. The window must
  // restart at this sample instead of producing negative deltas.
  auto state = window.Update(2.0, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(state.observed, 0.0);
  EXPECT_EQ(state.window_count, 0u);
  EXPECT_FALSE(state.breached);
  // Deltas rebuild from the post-reset baseline.
  state = window.Update(3.0, 2.0, 13.0);
  EXPECT_DOUBLE_EQ(state.observed, 0.2);
  EXPECT_EQ(state.window_count, 10u);
  EXPECT_TRUE(state.breached);
}

TEST(SloWindowTest, RateIsDeltaOverElapsed) {
  SloSpec spec;
  spec.name = "test_rate";
  spec.kind = SloKind::kRate;
  spec.metric = "num";
  spec.threshold = 4.0;
  spec.window_seconds = 60.0;
  SloWindow window(spec);
  (void)window.Update(0.0, 100.0);
  auto state = window.Update(2.0, 110.0);  // 10 events / 2 s
  EXPECT_DOUBLE_EQ(state.observed, 5.0);
  EXPECT_DOUBLE_EQ(state.burn_rate, 1.25);
  EXPECT_EQ(state.window_count, 10u);
  EXPECT_TRUE(state.breached);
}

TEST(SloWindowTest, MinCountGatesTheBreach) {
  SloWindow window(RatioSpec(0.1, 30.0, /*min_count=*/20));
  (void)window.Update(0.0, 0.0, 0.0);
  // 100% failure but only 5 attempts: not enough evidence to breach.
  auto state = window.Update(1.0, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(state.observed, 1.0);
  EXPECT_FALSE(state.breached);
  // The 20th attempt arrives; now it breaches.
  state = window.Update(2.0, 20.0, 20.0);
  EXPECT_EQ(state.window_count, 20u);
  EXPECT_TRUE(state.breached);
}

TEST(SloWindowTest, QuantileOverWindowedBucketDeltas) {
  SloSpec spec;
  spec.name = "test_p50";
  spec.kind = SloKind::kQuantile;
  spec.metric = "lat";
  spec.quantile = 0.5;
  spec.threshold = 1000.0;
  spec.window_seconds = 60.0;
  SloWindow window(spec);
  // Build cumulative bucket arrays through a real Histogram so the
  // bucket layout matches what the monitor feeds from the registry.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(10.0);  // 10 us
  (void)window.UpdateBuckets(0.0, histogram.Snapshot().buckets);
  // The window's population is the *new* samples only: 100 at ~5000 us.
  for (int i = 0; i < 100; ++i) histogram.Record(5000.0);
  auto state = window.UpdateBuckets(1.0, histogram.Snapshot().buckets);
  EXPECT_EQ(state.window_count, 100u);
  // p50 of the delta population lies in the 5000 us sample's bucket,
  // nowhere near the pre-window 10 us samples.
  EXPECT_GT(state.observed, 1000.0);
  EXPECT_TRUE(state.breached);
  EXPECT_GT(state.burn_rate, 1.0);
}

// --- HealthMonitor ------------------------------------------------------------

TEST(HealthMonitorTest, BreachLatchesAndFiresActionOnce) {
  auto& registry = MetricsRegistry::Global();
  auto& failures = registry.GetCounter("obs_test_hm_failures");
  auto& attempts = registry.GetCounter("obs_test_hm_attempts");

  SloSpec spec;
  spec.name = "obs_test_hm";
  spec.kind = SloKind::kRatio;
  spec.metric = "obs_test_hm_failures";
  spec.denominator = "obs_test_hm_attempts";
  spec.threshold = 0.2;
  spec.window_seconds = 600.0;  // nothing rolls off mid-test
  spec.min_count = 5;
  spec.policy = BreachPolicy::kPause;

  HealthMonitor monitor;
  ASSERT_TRUE(monitor.AddSlo(spec).ok());
  EXPECT_FALSE(monitor.AddSlo(spec).ok());  // duplicate name refused
  std::vector<BreachInfo> breaches;
  monitor.SetBreachAction(
      [&](const BreachInfo& info) { breaches.push_back(info); });

  monitor.EvaluateNow();  // baseline
  attempts.Add(10);
  failures.Add(1);  // 0.1 <= 0.2: healthy
  monitor.EvaluateNow();
  EXPECT_TRUE(breaches.empty());

  attempts.Add(10);
  failures.Add(9);  // window now 10/20 = 0.5 > 0.2: breach
  monitor.EvaluateNow();
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].slo_name, "obs_test_hm");
  EXPECT_EQ(breaches[0].policy, BreachPolicy::kPause);
  EXPECT_DOUBLE_EQ(breaches[0].observed, 0.5);
  EXPECT_DOUBLE_EQ(breaches[0].burn_rate, 2.5);
  EXPECT_EQ(breaches[0].window_count, 20u);

  // Still breached, but the action is latched: it fired once.
  failures.Add(5);
  attempts.Add(5);
  monitor.EvaluateNow();
  EXPECT_EQ(breaches.size(), 1u);

  const auto reports = monitor.Report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].state.breached);
  EXPECT_TRUE(reports[0].latched);
  EXPECT_GE(monitor.evaluations(), 4u);
}

TEST(HealthMonitorTest, JsonAndPrometheusRenderEscapedSloReport) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test_hm2_total").Add(3);

  SloSpec spec;
  // A hostile display name: quotes, backslash, newline. The API accepts
  // any non-empty name; both renderers must keep the documents well
  // formed anyway.
  spec.name = "evil \"quoted\\name\"\nwith newline";
  spec.kind = SloKind::kRate;
  spec.metric = "obs_test_hm2_total";
  spec.threshold = 100.0;
  spec.window_seconds = 60.0;
  HealthMonitor monitor;
  ASSERT_TRUE(monitor.AddSlo(spec).ok());
  monitor.EvaluateNow();

  JsonWriter json;
  monitor.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"evaluations\":"), std::string::npos);
  EXPECT_NE(text.find("evil \\\"quoted\\\\name\\\"\\nwith newline"),
            std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"rate\""), std::string::npos);
  EXPECT_NE(text.find("\"policy\":\"log\""), std::string::npos);

  const std::string prom = monitor.PrometheusText();
  EXPECT_NE(prom.find("# TYPE eric_slo_burn_rate gauge"), std::string::npos);
  EXPECT_NE(prom.find("slo=\"evil \\\"quoted\\\\name\\\"\\nwith newline\""),
            std::string::npos);

  // Install/uninstall: the global renderers follow the live monitor.
  SetGlobalHealthMonitor(&monitor);
  EXPECT_NE(GlobalHealthPrometheusText().find("eric_slo_observed"),
            std::string::npos);
  SetGlobalHealthMonitor(nullptr);
  EXPECT_EQ(GlobalHealthPrometheusText(), "");
  JsonWriter empty;
  WriteGlobalHealthJson(empty);
  EXPECT_EQ(empty.str(), "{\"evaluations\":0,\"slos\":[]}");
}

// --- The closed loop: a live campaign auto-paused by an SLO breach ------------

TEST(HealthMonitorTest, FaultyCampaignIsAutoPausedByBreach) {
  fleet::DeviceRegistry registry;
  const fleet::GroupId group = registry.CreateGroup("watched");
  std::vector<fleet::DeviceId> devices;
  for (int i = 0; i < 12; ++i) {
    auto id = registry.Enroll(0x7B0 + static_cast<uint64_t>(i), group);
    ASSERT_TRUE(id.ok());
    devices.push_back(*id);
  }

  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);
  fleet::CampaignConfig config;
  config.source = kTraceProgram;
  config.devices = devices;
  config.workers = 1;  // serial: the watchdog acts mid-campaign
  config.max_attempts = 1;
  config.channel.fault = net::ChannelFault::kRandomBitFlips;
  config.fault_rate = 1.0;  // every delivery fails: ratio pins at 1.0
  config.delivery_latency_us = 30000;

  fleet::CampaignControl control;
  fleet::DispatchGovernor governor({}, &control);
  config.governor = &governor;

  SloSpec spec;
  spec.name = "campaign_failures";
  spec.kind = SloKind::kRatio;
  spec.metric = "fleet_delivery_failures";
  spec.denominator = "fleet_delivery_attempts";
  spec.threshold = 0.05;
  spec.window_seconds = 30.0;
  spec.min_count = 2;
  spec.policy = BreachPolicy::kPause;

  HealthMonitor monitor;
  ASSERT_TRUE(monitor.AddSlo(spec).ok());
  std::atomic<int> breaches{0};
  monitor.SetBreachAction([&](const BreachInfo& info) {
    EXPECT_EQ(info.policy, BreachPolicy::kPause);
    breaches.fetch_add(1);
    control.Pause();
  });
  ASSERT_TRUE(monitor.Start(/*interval_seconds=*/0.01).ok());

  // Un-wedge the paused campaign once the pause is observed: cancelling
  // releases the dispatch gate and finalizes the remaining targets as
  // skipped — exactly what a daemon operator's kill does, minus the -9.
  std::thread unwedger([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!control.paused() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(control.paused()) << "watchdog never paused the campaign";
    control.Cancel();
  });

  auto report = engine.Run(config);
  unwedger.join();
  monitor.Stop();
  ASSERT_TRUE(report.ok());

  // The breach fired, paused dispatch, and the cancel finalized the
  // rest as skipped: the watchdog stopped a live campaign mid-flight.
  EXPECT_EQ(breaches.load(), 1);
  EXPECT_GT(report->skipped, 0u)
      << "campaign ran to completion before the watchdog acted";
  EXPECT_LT(report->failed + report->succeeded, devices.size());
  EXPECT_EQ(report->succeeded, 0u);  // fault rate 1.0, single attempt
}

}  // namespace
}  // namespace eric::obs
