// Tests for the paper-sanctioned extensions: device groups (one compile,
// many devices — Sec. III.1) and the RSA handshake (future work).
#include <gtest/gtest.h>

#include "core/encryption_policy.h"
#include "core/group_key.h"
#include "core/handshake.h"
#include "core/software_source.h"

namespace eric::core {
namespace {

const char* kProgram = R"(
  fn main() {
    var acc = 0;
    var i = 0;
    while (i < 32) { acc = acc + i * i; i = i + 1; }
    return acc % 1000;   // 10416 % 1000 = 416
  }
)";
constexpr int64_t kExpected = 416;

// --- Device groups ------------------------------------------------------------

TEST(GroupKeyTest, OneCompileRunsOnAllMembers) {
  crypto::KeyConfig config;
  auto group = DeviceGroup::Provision({0xA1, 0xA2, 0xA3, 0xA4}, config);
  ASSERT_TRUE(group.ok()) << group.status().ToString();

  SoftwareSource source(group->group_key(), config);
  auto built = source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  for (size_t i = 0; i < group->size(); ++i) {
    auto run = group->RunOnMember(i, wire);
    ASSERT_TRUE(run.ok()) << "member " << i << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kExpected) << "member " << i;
  }
}

TEST(GroupKeyTest, NonMemberStillRejects) {
  crypto::KeyConfig config;
  auto group = DeviceGroup::Provision({0xB1, 0xB2}, config);
  ASSERT_TRUE(group.ok());
  SoftwareSource source(group->group_key(), config);
  auto built = source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  TrustedDevice outsider(0xB3, config);
  outsider.Enroll();
  auto run = outsider.ReceiveAndRun(wire);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kVerificationFailed);
}

TEST(GroupKeyTest, MasksDifferPerDevice) {
  crypto::KeyConfig config;
  auto group = DeviceGroup::Provision({0xC1, 0xC2, 0xC3}, config);
  ASSERT_TRUE(group.ok());
  const auto& records = group->records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_NE(records[0].conversion_mask, records[1].conversion_mask);
  EXPECT_NE(records[1].conversion_mask, records[2].conversion_mask);
}

TEST(GroupKeyTest, MaskRevealsNothingWithoutDeviceKey) {
  // The mask XOR group key = device key; without either side it is just
  // a uniformly distributed string. Spot-check: masks are not trivially
  // the group key or all-zero.
  crypto::KeyConfig config;
  auto group = DeviceGroup::Provision({0xD1, 0xD2}, config);
  ASSERT_TRUE(group.ok());
  for (const auto& record : group->records()) {
    EXPECT_NE(record.conversion_mask, group->group_key());
    crypto::Key256 zero{};
    EXPECT_NE(record.conversion_mask, zero);
  }
}

TEST(GroupKeyTest, EmptyGroupRejected) {
  crypto::KeyConfig config;
  EXPECT_FALSE(DeviceGroup::Provision({}, config).ok());
}

TEST(GroupKeyTest, OutOfRangeMemberRejected) {
  crypto::KeyConfig config;
  auto group = DeviceGroup::Provision({0xE1}, config);
  ASSERT_TRUE(group.ok());
  const std::vector<uint8_t> junk(64, 0);
  EXPECT_FALSE(group->RunOnMember(5, junk).ok());
}

TEST(GroupKeyTest, ConversionMaskRequiresEnrollment) {
  crypto::KeyConfig config;
  HardwareDecryptionEngine hde(0xF1, config);
  crypto::Key256 mask{};
  mask.fill(1);
  EXPECT_EQ(hde.ProvisionConversionMask(mask).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(GroupKeyTest, ApplyConversionMaskIsInvolution) {
  crypto::Key256 key{}, mask{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i);
    mask[i] = static_cast<uint8_t>(200 - i);
  }
  EXPECT_EQ(ApplyConversionMask(ApplyConversionMask(key, mask), mask), key);
}

// --- RSA handshake --------------------------------------------------------------

TEST(HandshakeTest, EndToEndKeyExchangeAndRun) {
  crypto::KeyConfig config;
  Xoshiro256 rng(0x45A);

  // Source publishes a public key; device responds with its wrapped
  // PUF-based key; source unwraps and builds a package.
  auto initiator = HandshakeInitiator::Create(512, rng);
  ASSERT_TRUE(initiator.ok()) << initiator.status().ToString();

  TrustedDevice device(0x777AB, config);
  auto wrapped = RespondToHandshake(device, initiator->public_key(), rng);
  ASSERT_TRUE(wrapped.ok());

  auto key = initiator->CompleteHandshake(*wrapped);
  ASSERT_TRUE(key.ok());

  SoftwareSource source(*key, config);
  auto built = source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exec.exit_code, kExpected);
}

TEST(HandshakeTest, EavesdropperLearnsNothingUsable) {
  crypto::KeyConfig config;
  Xoshiro256 rng(0x45B);
  auto initiator = HandshakeInitiator::Create(512, rng);
  ASSERT_TRUE(initiator.ok());
  TrustedDevice device(0x777AC, config);
  auto wrapped = RespondToHandshake(device, initiator->public_key(), rng);
  ASSERT_TRUE(wrapped.ok());

  // Eavesdropper uses the wrapped blob bytes directly as a key guess.
  crypto::Key256 guess{};
  std::copy_n(wrapped->begin(), guess.size(), guess.begin());
  SoftwareSource impostor(guess, config);
  auto built = impostor.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  EXPECT_FALSE(run.ok());
}

TEST(HandshakeTest, TamperedResponseFailsSafe) {
  crypto::KeyConfig config;
  Xoshiro256 rng(0x45C);
  auto initiator = HandshakeInitiator::Create(512, rng);
  ASSERT_TRUE(initiator.ok());
  TrustedDevice device(0x777AD, config);
  auto wrapped = RespondToHandshake(device, initiator->public_key(), rng);
  ASSERT_TRUE(wrapped.ok());
  (*wrapped)[10] ^= 0x08;

  auto key = initiator->CompleteHandshake(*wrapped);
  if (!key.ok()) return;  // padding caught it: fail-safe
  // Otherwise the unwrapped key is wrong and packages built with it are
  // rejected by the device — still fail-safe.
  SoftwareSource source(*key, config);
  auto built = source.CompileAndPackage(kProgram, EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  EXPECT_FALSE(run.ok());
}

}  // namespace
}  // namespace eric::core
