// Focused tests for the optimization passes and the codegen peephole:
// each transformation must shrink code without changing behaviour.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/irgen.h"
#include "compiler/parser.h"
#include "compiler/passes.h"
#include "sim/soc.h"
#include "workloads/workloads.h"

namespace eric::compiler {
namespace {

IrModule IrOf(const char* source) {
  auto parsed = ParseModule(source);
  EXPECT_TRUE(parsed.ok());
  auto ir = GenerateIr(*parsed);
  EXPECT_TRUE(ir.ok());
  return *std::move(ir);
}

size_t InstrCount(const IrFunction& fn) {
  size_t count = 0;
  for (const auto& block : fn.blocks) count += block.instrs.size();
  return count;
}

int64_t RunProgram(const CompiledProgram& program) {
  sim::Soc soc;
  soc.LoadProgram(program.image);
  const auto stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, sim::HaltReason::kExit);
  return stats.exit_code;
}

TEST(CopyPropagationTest, ForwardsThroughMove) {
  IrModule ir = IrOf(R"(
    fn main() {
      var a = 5;
      var b = a;      // move
      var c = b + 1;  // should read `a` after propagation
      return c;
    }
  )");
  const auto result = PropagateCopies(ir.functions[0]);
  EXPECT_GT(result.changes, 0u);
}

TEST(CopyPropagationTest, StopsAtRedefinition) {
  IrModule ir = IrOf(R"(
    fn main() {
      var a = 5;
      var b = a;
      a = 9;          // b must NOT follow a's new value
      return b;
    }
  )");
  PropagateCopies(ir.functions[0]);
  FoldConstants(ir.functions[0]);
  EliminateDeadCode(ir.functions[0]);
  // Semantics check through full compilation.
  auto compiled = Compile(R"(
    fn main() {
      var a = 5;
      var b = a;
      a = 9;
      return b;
    }
  )");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(RunProgram(compiled->program), 5);
}

TEST(CseTest, ReusesRepeatedExpression) {
  IrModule ir = IrOf(R"(
    fn f(x, y) {
      var a = x * y;
      var b = x * y;   // CSE candidate
      return a + b;
    }
    fn main() { return f(3, 4); }
  )");
  const auto result = EliminateCommonSubexpressions(ir.functions[0]);
  EXPECT_GT(result.changes, 0u);
}

TEST(CseTest, SelfReferencingExpressionNotMemoized) {
  // x = x + y; z = x + y  must NOT reuse the first result.
  auto compiled = Compile(R"(
    fn main() {
      var x = 1;
      var y = 10;
      x = x + y;        // x = 11
      var z = x + y;    // z = 21, not 11
      return z;
    }
  )");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(RunProgram(compiled->program), 21);
}

TEST(CseTest, OperandRedefinitionInvalidates) {
  auto compiled = Compile(R"(
    fn main() {
      var a = 2;
      var b = 3;
      var first = a * b;   // 6
      a = 10;
      var second = a * b;  // 30, must not reuse 6
      return first + second;
    }
  )");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(RunProgram(compiled->program), 36);
}

TEST(PassPipelineTest, OptimizationShrinksIr) {
  const char* source = R"(
    fn main() {
      var a = 3 + 4;
      var b = a;
      var c = b * 2;
      var d = b * 2;
      var unused = 99;
      return c + d;
    }
  )";
  IrModule ir = IrOf(source);
  const size_t before = InstrCount(ir.functions[0]);
  for (int round = 0; round < 3; ++round) {
    FoldConstants(ir.functions[0]);
    PropagateCopies(ir.functions[0]);
    EliminateCommonSubexpressions(ir.functions[0]);
    EliminateDeadCode(ir.functions[0]);
  }
  EXPECT_LT(InstrCount(ir.functions[0]), before);
  // Behaviour preserved end to end.
  auto compiled = Compile(source);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(RunProgram(compiled->program), 28);
}

TEST(PeepholeTest, StoreLoadPairsForwarded) {
  // The slot machine stores every IR result then reloads it; the peephole
  // must remove a measurable share of those loads. Compare against a
  // no-optimization build which also goes through the peephole — the
  // comparison here is optimize on/off at equal semantics.
  const char* source = R"(
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 50) {
        acc = acc + i * 3 - 1;
        i = i + 1;
      }
      return acc;
    }
  )";
  CompileOptions opt;
  auto compiled = Compile(source, opt);
  ASSERT_TRUE(compiled.ok());
  // acc = sum_{i=0..49} (3i - 1) = 3*1225 - 50 = 3625.
  EXPECT_EQ(RunProgram(compiled->program), 3625);
}

TEST(PeepholeTest, AllWorkloadsStillCorrect) {
  // The peephole runs on every build; re-assert the whole suite after the
  // pass-pipeline changes (cheap insurance against subtle clobbering).
  for (const auto& w : workloads::AllWorkloads()) {
    auto compiled = Compile(w.source);
    ASSERT_TRUE(compiled.ok()) << w.name;
    EXPECT_EQ(RunProgram(compiled->program), w.reference()) << w.name;
  }
}

TEST(PeepholeTest, OptimizedIsSmallerAndFaster) {
  const auto* w = workloads::FindWorkload("basicmath");
  CompileOptions opt, no_opt;
  no_opt.optimize = false;
  auto fast = Compile(w->source, opt);
  auto slow = Compile(w->source, no_opt);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_LT(fast->program.stats.total_instructions,
            slow->program.stats.total_instructions);

  sim::Soc soc_fast, soc_slow;
  soc_fast.LoadProgram(fast->program.image);
  soc_slow.LoadProgram(slow->program.image);
  const auto fast_stats = soc_fast.Run();
  const auto slow_stats = soc_slow.Run();
  EXPECT_EQ(fast_stats.exit_code, slow_stats.exit_code);
  EXPECT_LT(fast_stats.cycles, slow_stats.cycles);
}

}  // namespace
}  // namespace eric::compiler
