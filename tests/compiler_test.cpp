// End-to-end compiler tests: EricC source -> RV64IMC image -> simulator.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/irgen.h"
#include "compiler/parser.h"
#include "compiler/passes.h"
#include "sim/soc.h"

namespace eric::compiler {
namespace {

// Compiles and runs a program; returns the exit code (main's return value).
int64_t CompileAndRun(const std::string& source, std::string* console = nullptr,
                      const CompileOptions& options = {}) {
  auto compiled = Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return INT64_MIN;
  sim::Soc soc;
  soc.LoadProgram(compiled->program.image);
  const sim::ExecStats stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, sim::HaltReason::kExit)
      << "final pc " << stats.final_pc;
  if (console != nullptr) *console = soc.console_output();
  return stats.exit_code;
}

TEST(CompilerTest, ReturnConstant) {
  EXPECT_EQ(CompileAndRun("fn main() { return 42; }"), 42);
}

TEST(CompilerTest, Arithmetic) {
  EXPECT_EQ(CompileAndRun("fn main() { return 6 * 7; }"), 42);
  EXPECT_EQ(CompileAndRun("fn main() { return (100 - 16) / 2; }"), 42);
  EXPECT_EQ(CompileAndRun("fn main() { return 142 % 100; }"), 42);
  EXPECT_EQ(CompileAndRun("fn main() { return 5 + -5; }"), 0);
}

TEST(CompilerTest, BitwiseOps) {
  EXPECT_EQ(CompileAndRun("fn main() { return 0xF0 & 0x3C; }"), 0x30);
  EXPECT_EQ(CompileAndRun("fn main() { return 0xF0 | 0x0F; }"), 0xFF);
  EXPECT_EQ(CompileAndRun("fn main() { return 0xFF ^ 0x0F; }"), 0xF0);
  EXPECT_EQ(CompileAndRun("fn main() { return 1 << 10; }"), 1024);
  EXPECT_EQ(CompileAndRun("fn main() { return 1024 >> 3; }"), 128);
  EXPECT_EQ(CompileAndRun("fn main() { return ~0; }"), -1);
}

TEST(CompilerTest, Comparisons) {
  EXPECT_EQ(CompileAndRun("fn main() { return 3 < 5; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 5 < 3; }"), 0);
  EXPECT_EQ(CompileAndRun("fn main() { return 5 <= 5; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 5 == 5; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 5 != 5; }"), 0);
  EXPECT_EQ(CompileAndRun("fn main() { return 7 > 2; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 0 - 1 < 1; }"), 1);  // signed
}

TEST(CompilerTest, LogicalOperators) {
  EXPECT_EQ(CompileAndRun("fn main() { return 1 && 2; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 1 && 0; }"), 0);
  EXPECT_EQ(CompileAndRun("fn main() { return 0 || 3; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return 0 || 0; }"), 0);
  EXPECT_EQ(CompileAndRun("fn main() { return !0; }"), 1);
  EXPECT_EQ(CompileAndRun("fn main() { return !7; }"), 0);
}

TEST(CompilerTest, ShortCircuitSkipsSideEffects) {
  // If && evaluated its RHS eagerly, g would be 1.
  const std::string source = R"(
    var g;
    fn set_g() { g = 1; return 1; }
    fn main() { var x = 0 && set_g(); return g; }
  )";
  EXPECT_EQ(CompileAndRun(source), 0);
}

TEST(CompilerTest, Variables) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var a = 10;
      var b = a * 3;
      a = b - 8;
      return a + b;
    }
  )"), 52);
}

TEST(CompilerTest, IfElse) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var x = 10;
      if (x > 5) { return 1; } else { return 2; }
    }
  )"), 1);
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var x = 3;
      if (x > 5) { return 1; } else { return 2; }
    }
  )"), 2);
}

TEST(CompilerTest, ElseIfChain) {
  const std::string source = R"(
    fn classify(x) {
      if (x < 10) { return 0; }
      else if (x < 100) { return 1; }
      else { return 2; }
    }
    fn main() {
      return classify(5) * 100 + classify(50) * 10 + classify(500);
    }
  )";
  EXPECT_EQ(CompileAndRun(source), 12);
}

TEST(CompilerTest, WhileLoop) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var sum = 0;
      var i = 1;
      while (i <= 10) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )"), 55);
}

TEST(CompilerTest, BreakAndContinue) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var sum = 0;
      var i = 0;
      while (1) {
        i = i + 1;
        if (i > 100) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // odd numbers 1..99
      }
      return sum;
    }
  )"), 2500);
}

TEST(CompilerTest, NestedLoops) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      var total = 0;
      var i = 0;
      while (i < 10) {
        var j = 0;
        while (j < 10) {
          total = total + 1;
          j = j + 1;
        }
        i = i + 1;
      }
      return total;
    }
  )"), 100);
}

TEST(CompilerTest, FunctionsAndRecursion) {
  EXPECT_EQ(CompileAndRun(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(15); }
  )"), 610);
}

TEST(CompilerTest, ManyParameters) {
  EXPECT_EQ(CompileAndRun(R"(
    fn sum8(a, b, c, d, e, f, g, h) {
      return a + b + c + d + e + f + g + h;
    }
    fn main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
  )"), 36);
}

TEST(CompilerTest, GlobalScalars) {
  EXPECT_EQ(CompileAndRun(R"(
    var counter = 5;
    fn bump() { counter = counter + 1; return 0; }
    fn main() {
      bump();
      bump();
      return counter;
    }
  )"), 7);
}

TEST(CompilerTest, GlobalArrays) {
  EXPECT_EQ(CompileAndRun(R"(
    var table[10];
    fn main() {
      var i = 0;
      while (i < 10) {
        table[i] = i * i;
        i = i + 1;
      }
      return table[7];
    }
  )"), 49);
}

TEST(CompilerTest, ArrayInitializers) {
  EXPECT_EQ(CompileAndRun(R"(
    var primes[5] = {2, 3, 5, 7, 11};
    fn main() { return primes[0] + primes[4]; }
  )"), 13);
}

TEST(CompilerTest, NegativeInitializers) {
  EXPECT_EQ(CompileAndRun(R"(
    var offsets[2] = {-10, 10};
    var bias = -32;
    fn main() { return offsets[0] + offsets[1] + bias; }
  )"), -32);
}

TEST(CompilerTest, PutcWritesConsole) {
  std::string console;
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      putc(79);   // 'O'
      putc(75);   // 'K'
      return 0;
    }
  )", &console), 0);
  EXPECT_EQ(console, "OK");
}

TEST(CompilerTest, ExitBuiltinHaltsEarly) {
  EXPECT_EQ(CompileAndRun(R"(
    fn main() {
      exit(33);
      return 99;   // unreachable
    }
  )"), 33);
}

TEST(CompilerTest, LargeConstants) {
  EXPECT_EQ(CompileAndRun("fn main() { return 1000000007 % 1000; }"), 7);
  EXPECT_EQ(CompileAndRun("fn main() { return (1 << 40) >> 35; }"), 32);
  EXPECT_EQ(CompileAndRun("fn main() { return 0x123456789 & 0xFFF; }"),
            0x789);
}

TEST(CompilerTest, UnoptimizedMatchesOptimized) {
  const std::string source = R"(
    fn work(n) {
      var acc = 0;
      var i = 0;
      while (i < n) {
        acc = acc + i * 2 + 1;
        i = i + 1;
      }
      return acc;
    }
    fn main() { return work(20); }
  )";
  CompileOptions no_opt;
  no_opt.optimize = false;
  EXPECT_EQ(CompileAndRun(source), CompileAndRun(source, nullptr, no_opt));
}

TEST(CompilerTest, UncompressedMatchesCompressed) {
  const std::string source = R"(
    fn main() {
      var x = 17;
      var y = x * 3;
      return y - x;
    }
  )";
  CompileOptions wide;
  wide.compress = false;
  EXPECT_EQ(CompileAndRun(source), CompileAndRun(source, nullptr, wide));
}

TEST(CompilerTest, CompressionShrinksText) {
  const std::string source = R"(
    fn main() {
      var sum = 0;
      var i = 0;
      while (i < 100) { sum = sum + i; i = i + 1; }
      return sum;
    }
  )";
  CompileOptions wide, narrow;
  wide.compress = false;
  auto w = Compile(source, wide);
  auto n = Compile(source, narrow);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(n.ok());
  EXPECT_LT(n->program.text_bytes, w->program.text_bytes);
  EXPECT_GT(n->program.stats.compressed_fraction(), 0.2);
}

TEST(CompilerTest, TimingsCoverAllStages) {
  auto compiled = Compile("fn main() { return 1; }");
  ASSERT_TRUE(compiled.ok());
  ASSERT_GE(compiled->timings.size(), 3u);
  EXPECT_EQ(compiled->timings[0].name, "parse");
  EXPECT_GT(compiled->TotalMicroseconds(), 0.0);
}

// --- Error reporting ---------------------------------------------------------

TEST(CompilerErrorTest, SyntaxError) {
  EXPECT_FALSE(Compile("fn main( { }").ok());
  EXPECT_FALSE(Compile("fn main() { return 1 }").ok());  // missing ';'
  EXPECT_FALSE(Compile("fn main() { @ }").ok());
}

TEST(CompilerErrorTest, SemanticErrors) {
  EXPECT_FALSE(Compile("fn main() { return nope; }").ok());
  EXPECT_FALSE(Compile("fn main() { return nope(); }").ok());
  EXPECT_FALSE(Compile("fn f() { return 1; } fn f() { return 2; }").ok());
  EXPECT_FALSE(Compile("fn notmain() { return 1; }").ok());
  EXPECT_FALSE(Compile("fn main() { break; }").ok());
  EXPECT_FALSE(Compile("fn main() { var x = 1; var x = 2; return x; }").ok());
}

// --- Pass unit behaviour -------------------------------------------------------

TEST(PassTest, ConstantFoldingFoldsChain) {
  auto parsed = ParseModule("fn main() { return 2 + 3 * 4; }");
  ASSERT_TRUE(parsed.ok());
  auto ir = GenerateIr(*parsed);
  ASSERT_TRUE(ir.ok());
  const auto result = FoldConstants(ir->functions[0]);
  EXPECT_GE(result.changes, 2u);  // both the mul and the add fold
}

TEST(PassTest, DeadCodeRemovesUnusedConst) {
  auto parsed = ParseModule("fn main() { var unused = 123; return 0; }");
  ASSERT_TRUE(parsed.ok());
  auto ir = GenerateIr(*parsed);
  ASSERT_TRUE(ir.ok());
  const size_t before = ir->functions[0].blocks[0].instrs.size();
  EliminateDeadCode(ir->functions[0]);
  EXPECT_LT(ir->functions[0].blocks[0].instrs.size(), before);
}

TEST(PassTest, OptimizationShrinksConstantLoop) {
  // A loop with a constant-false condition should vanish almost entirely.
  const std::string source = R"(
    fn main() {
      var sum = 0;
      while (0) { sum = sum + 1; }
      return sum;
    }
  )";
  CompileOptions opt, no_opt;
  no_opt.optimize = false;
  auto optimized = Compile(source, opt);
  auto plain = Compile(source, no_opt);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_LT(optimized->program.stats.total_instructions,
            plain->program.stats.total_instructions);
}

TEST(PassTest, IrDumpIsReadable) {
  auto parsed = ParseModule("var g[4]; fn main() { g[1] = 7; return g[1]; }");
  ASSERT_TRUE(parsed.ok());
  auto ir = GenerateIr(*parsed);
  ASSERT_TRUE(ir.ok());
  const std::string dump = DumpIr(*ir);
  EXPECT_NE(dump.find("fn main"), std::string::npos);
  EXPECT_NE(dump.find("store g"), std::string::npos);
  EXPECT_NE(dump.find("load g"), std::string::npos);
}

// --- RV32I code generation --------------------------------------------------

// Compiles for RV32I and runs on an RV32I core; returns the exit code.
int64_t CompileAndRunRv32(const std::string& source) {
  CompileOptions options;
  options.isa = isa::IsaId::kRv32I;
  auto compiled = Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return INT64_MIN;
  EXPECT_EQ(compiled->program.isa, isa::IsaId::kRv32I);
  sim::Soc soc({}, isa::IsaId::kRv32I);
  soc.LoadProgram(compiled->program.image);
  const sim::ExecStats stats = soc.Run();
  EXPECT_EQ(stats.halt_reason, sim::HaltReason::kExit)
      << "final pc " << stats.final_pc;
  return stats.exit_code;
}

TEST(Rv32CodegenTest, BasicPrograms) {
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 42; }"), 42);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 5 + -5; }"), 0);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 0xF0 & 0x3C; }"), 0x30);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 1 << 10; }"), 1024);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 3 < 5; }"), 1);
}

TEST(Rv32CodegenTest, SoftwareMultiplyDivideHelpers) {
  // RV32I has no M extension: mul/div/rem lower to synthesized helper
  // routines. The results must match the hardware instructions bit for
  // bit within 32-bit range.
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 6 * 7; }"), 42);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 12345 * 6789; }"),
            12345 * 6789);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return (100 - 16) / 2; }"), 42);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 142 % 100; }"), 42);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 1000000 / 7; }"),
            1000000 / 7);
  EXPECT_EQ(CompileAndRunRv32("fn main() { return 1000000 % 7; }"),
            1000000 % 7);
  // Division with a variable divisor (no strength reduction possible).
  EXPECT_EQ(CompileAndRunRv32(R"(
    fn main() {
      var d = 13;
      return 400 / d + 400 % d;
    }
  )"),
            400 / 13 + 400 % 13);
}

TEST(Rv32CodegenTest, LoopsAndCallsMatchRv64) {
  // 32-bit-clean code must compute identical results on both targets.
  const std::string source = R"(
    fn sum(n) {
      var total = 0;
      while (n > 0) {
        total = total + n;
        n = n - 1;
      }
      return total;
    }
    fn main() { return sum(100); }
  )";
  EXPECT_EQ(CompileAndRun(source), 5050);
  EXPECT_EQ(CompileAndRunRv32(source), 5050);
}

TEST(Rv32CodegenTest, GlobalsUseFourByteWords) {
  // Global arrays stride by the ISA's word size; an RV32 image must
  // load back what it stored through 4-byte slots.
  EXPECT_EQ(CompileAndRunRv32(R"(
    var g[4];
    fn main() {
      g[0] = 11;
      g[1] = 22;
      g[3] = 33;
      return g[0] + g[1] + g[3];
    }
  )"),
            66);
}

TEST(Rv32CodegenTest, RejectsSixtyFourBitConstants) {
  // A constant outside the 32-bit range cannot be materialized on
  // RV32I: codegen must refuse (fail closed), not truncate.
  CompileOptions options;
  options.isa = isa::IsaId::kRv32I;
  auto compiled = Compile("fn main() { return 0x123456789; }", options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kInvalidArgument);
  // The same source compiles fine for the 64-bit target.
  EXPECT_TRUE(Compile("fn main() { return 0x123456789; }").ok());
}

TEST(Rv32CodegenTest, ImagesAreUncompressed) {
  // RV32I has no C extension, so even with compression requested every
  // instruction must be 4 bytes (compressed_instructions == 0).
  CompileOptions options;
  options.isa = isa::IsaId::kRv32I;
  options.compress = true;
  auto compiled = Compile("fn main() { return 6 * 7; }", options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->program.stats.compressed_instructions, 0u);
}

}  // namespace
}  // namespace eric::compiler
