// Update-agent tests: the A/B-slot state machine under crash injection at
// every apply phase and from both slot parities, manifest round-trips
// (reload == reboot), fail-closed behaviour on every manifest corruption,
// and the soak's core invariant — the active slot always holds a
// CRC-valid, epoch-current image, and replaying recovery is idempotent
// (a crash loop counts one interrupted apply exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "agent/update_agent.h"
#include "crypto/sha256.h"
#include "store/wal.h"
#include "support/rng.h"

namespace eric::agent {
namespace {

namespace fs = std::filesystem;

std::string MakeTempDir(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("eric-agent-" + std::string(tag) + "-" +
                        std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> Image(uint64_t seed, size_t size) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> bytes(size);
  for (auto& byte : bytes) byte = static_cast<uint8_t>(rng.Next());
  return bytes;
}

crypto::Sha256Digest KeyFp(uint8_t tag) {
  crypto::Sha256Digest digest{};
  digest.fill(tag);
  return digest;
}

Status HealthyCheck(std::span<const uint8_t>) { return Status::Ok(); }

/// Asserts the post-recovery invariants the chaos soak sweeps for: the
/// agent is idle, the active slot's bytes match their recorded CRC, and
/// the active image is exactly `expected` (the last apply that passed
/// health — epoch-current, never a torn or half-applied one).
void ExpectHealthyActive(const UpdateAgent& agent,
                         const std::vector<uint8_t>& expected) {
  const AgentState state = agent.state();
  EXPECT_EQ(state.phase, ApplyPhase::kIdle);
  EXPECT_EQ(state.staged_slot, -1);
  EXPECT_TRUE(agent.ActiveCrcValid());
  const auto active = agent.active_image();
  ASSERT_EQ(active.size(), expected.size());
  EXPECT_TRUE(std::equal(active.begin(), active.end(), expected.begin()));
  if (!expected.empty()) {
    ASSERT_GE(state.active_slot, 0);
    EXPECT_EQ(store::Crc32(expected),
              state.slots[state.active_slot].image_crc);
  }
}

TEST(UpdateAgentTest, FreshApplyActivatesSlotZero) {
  const std::string dir = MakeTempDir("fresh");
  UpdateAgent agent(7, dir + "/slots-7.bin");
  ASSERT_TRUE(agent.Recover().ok());
  EXPECT_TRUE(agent.active_image().empty());
  EXPECT_TRUE(agent.ActiveCrcValid());  // no image is not a torn image

  const auto image = Image(1, 900);
  ASSERT_TRUE(agent.Apply(image, 41, KeyFp(1), HealthyCheck).ok());
  const AgentState state = agent.state();
  EXPECT_EQ(state.active_slot, 0);
  EXPECT_EQ(state.slots[0].version, 41u);
  EXPECT_EQ(state.slots[0].key_fingerprint, KeyFp(1));
  EXPECT_EQ(state.counters.applies, 1u);
  EXPECT_EQ(state.counters.rollbacks, 0u);
  ExpectHealthyActive(agent, image);
  EXPECT_TRUE(fs::exists(dir + "/slots-7.bin"));
}

TEST(UpdateAgentTest, SecondApplyUsesOtherSlotAndKeepsPreviousImage) {
  UpdateAgent agent(9, "");  // memory-only mode also exercises A/B logic
  const auto v1 = Image(10, 600);
  const auto v2 = Image(11, 700);
  ASSERT_TRUE(agent.Apply(v1, 1, KeyFp(1), HealthyCheck).ok());
  ASSERT_TRUE(agent.Apply(v2, 2, KeyFp(1), HealthyCheck).ok());
  const AgentState state = agent.state();
  EXPECT_EQ(state.active_slot, 1);
  // A/B: the displaced image keeps its slot until the NEXT apply
  // overwrites it — that is what makes the next rollback instant.
  EXPECT_TRUE(state.slots[0].present);
  EXPECT_EQ(state.slots[0].version, 1u);
  ExpectHealthyActive(agent, v2);
  EXPECT_EQ(state.counters.applies, 2u);
}

// Crash injection at every apply phase, starting from BOTH slot
// parities: an interrupted apply must never cost the device its running
// image. Pre-flip crashes discard the staged slot; post-flip crashes
// roll back to the previous slot. Either way a fresh agent (the reboot)
// recovers to the same healthy image that was active before the apply.
TEST(UpdateAgentTest, CrashAtEveryPhaseBothSlotsRecoversOldImage) {
  const CrashPoint kPoints[] = {CrashPoint::kAfterStage,
                                CrashPoint::kAfterVerify,
                                CrashPoint::kAfterFlip,
                                CrashPoint::kDuringHealth};
  for (const CrashPoint point : kPoints) {
    for (int parity = 0; parity < 2; ++parity) {
      SCOPED_TRACE("point=" + std::to_string(static_cast<int>(point)) +
                   " parity=" + std::to_string(parity));
      const std::string dir = MakeTempDir("crash");
      const std::string manifest = dir + "/slots-1.bin";
      const auto good = Image(100 + parity, 800);
      const auto next = Image(200 + parity, 820);
      uint64_t good_version = 5;
      {
        UpdateAgent agent(1, manifest);
        ASSERT_TRUE(agent.Recover().ok());
        ASSERT_TRUE(agent.Apply(good, good_version, KeyFp(3),
                                HealthyCheck).ok());
        if (parity == 1) {
          // Park the good image in slot 1 so the crashing apply targets
          // slot 0 — the mirror of the parity-0 case.
          ASSERT_TRUE(agent.Apply(good, ++good_version, KeyFp(3),
                                  HealthyCheck).ok());
          ASSERT_EQ(agent.state().active_slot, 1);
        } else {
          ASSERT_EQ(agent.state().active_slot, 0);
        }

        agent.ArmCrash(point);
        Status crashed = agent.Apply(next, 9, KeyFp(3), HealthyCheck);
        ASSERT_FALSE(crashed.ok());
        EXPECT_TRUE(UpdateAgent::IsInjectedCrash(crashed)) << crashed.message();
        EXPECT_TRUE(agent.NeedsRecovery());
      }  // the "device" dies here; only the manifest survives

      UpdateAgent rebooted(1, manifest);
      ASSERT_TRUE(rebooted.Recover().ok());
      ExpectHealthyActive(rebooted, good);
      const AgentState state = rebooted.state();
      EXPECT_EQ(state.active_slot, parity);
      EXPECT_EQ(state.slots[parity].version, good_version);
      EXPECT_EQ(state.counters.crash_recoveries, 1u);
      const bool flipped = point == CrashPoint::kAfterFlip ||
                           point == CrashPoint::kDuringHealth;
      EXPECT_EQ(state.counters.rollbacks, flipped ? 1u : 0u);

      // The recovered device is fully serviceable: the next apply lands.
      ASSERT_TRUE(rebooted.Apply(next, 9, KeyFp(3), HealthyCheck).ok());
      ExpectHealthyActive(rebooted, next);
    }
  }
}

// A crash interrupting the FIRST ever apply must leave the device
// imageless (its pre-apply state), not torn.
TEST(UpdateAgentTest, CrashOnFirstApplyRecoversToNoImage) {
  const std::string dir = MakeTempDir("first-crash");
  const std::string manifest = dir + "/slots-2.bin";
  {
    UpdateAgent agent(2, manifest);
    agent.ArmCrash(CrashPoint::kAfterFlip);
    Status crashed = agent.Apply(Image(1, 500), 1, KeyFp(1), HealthyCheck);
    ASSERT_FALSE(crashed.ok());
  }
  UpdateAgent rebooted(2, manifest);
  ASSERT_TRUE(rebooted.Recover().ok());
  EXPECT_TRUE(rebooted.active_image().empty());
  EXPECT_EQ(rebooted.state().active_slot, -1);
  EXPECT_TRUE(rebooted.ActiveCrcValid());
  EXPECT_EQ(rebooted.state().phase, ApplyPhase::kIdle);
}

TEST(UpdateAgentTest, HealthFailureRollsBackAndReturnsVerdict) {
  const std::string dir = MakeTempDir("health");
  UpdateAgent agent(3, dir + "/slots-3.bin");
  const auto v1 = Image(1, 700);
  const auto v2 = Image(2, 750);
  ASSERT_TRUE(agent.Apply(v1, 1, KeyFp(1), HealthyCheck).ok());

  agent.ArmHealthFailures(1);
  Status verdict = agent.Apply(v2, 2, KeyFp(1), HealthyCheck);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), ErrorCode::kVerificationFailed);
  ExpectHealthyActive(agent, v1);  // rollback left v1 running
  AgentState state = agent.state();
  EXPECT_EQ(state.counters.health_failures, 1u);
  EXPECT_EQ(state.counters.rollbacks, 1u);

  // A real health check's own status is what Apply reports.
  Status custom = agent.Apply(v2, 2, KeyFp(1), [](std::span<const uint8_t>) {
    return Status(ErrorCode::kVerificationFailed, "self-test: sensor dead");
  });
  ASSERT_FALSE(custom.ok());
  EXPECT_NE(custom.message().find("sensor dead"), std::string::npos);
  ExpectHealthyActive(agent, v1);

  // And once the device is healthy again, the same update goes through.
  ASSERT_TRUE(agent.Apply(v2, 2, KeyFp(1), HealthyCheck).ok());
  ExpectHealthyActive(agent, v2);
}

// Rollback must be idempotent under replay: a device in a crash loop
// re-runs Recover() from the same flipped manifest many times, and the
// interrupted apply must be counted once, not once per reboot.
TEST(UpdateAgentTest, RecoveryReplayIsIdempotent) {
  const std::string dir = MakeTempDir("replay");
  const std::string manifest = dir + "/slots-4.bin";
  const auto good = Image(1, 640);
  {
    UpdateAgent agent(4, manifest);
    ASSERT_TRUE(agent.Apply(good, 1, KeyFp(1), HealthyCheck).ok());
    agent.ArmCrash(CrashPoint::kAfterFlip);
    ASSERT_FALSE(agent.Apply(Image(2, 660), 2, KeyFp(1), HealthyCheck).ok());
  }
  AgentState first_recovered;
  for (int reboot = 0; reboot < 4; ++reboot) {
    SCOPED_TRACE("reboot=" + std::to_string(reboot));
    UpdateAgent agent(4, manifest);
    ASSERT_TRUE(agent.Recover().ok());
    // Recover() persists its rollback, so every later replay sees an
    // idle manifest: exactly one crash recovery, one rollback, ever.
    const AgentState state = agent.state();
    EXPECT_EQ(state.counters.crash_recoveries, 1u);
    EXPECT_EQ(state.counters.rollbacks, 1u);
    ExpectHealthyActive(agent, good);
    if (reboot == 0) {
      first_recovered = state;
    } else {
      EXPECT_EQ(state.active_slot, first_recovered.active_slot);
      EXPECT_EQ(state.slots[0].present, first_recovered.slots[0].present);
      EXPECT_EQ(state.slots[1].present, first_recovered.slots[1].present);
    }
  }
}

TEST(UpdateAgentTest, ManifestRoundTripPreservesStateAndCounters) {
  const std::string dir = MakeTempDir("roundtrip");
  const std::string manifest = dir + "/slots-5.bin";
  const auto v2 = Image(2, 1200);
  AgentState before;
  {
    UpdateAgent agent(5, manifest);
    ASSERT_TRUE(agent.Apply(Image(1, 1100), 7, KeyFp(7), HealthyCheck).ok());
    agent.ArmHealthFailures(1);
    ASSERT_FALSE(agent.Apply(v2, 8, KeyFp(7), HealthyCheck).ok());
    ASSERT_TRUE(agent.Apply(v2, 8, KeyFp(9), HealthyCheck).ok());
    before = agent.state();
  }
  UpdateAgent reloaded(5, manifest);
  ASSERT_TRUE(reloaded.Recover().ok());
  const AgentState after = reloaded.state();
  EXPECT_EQ(after.active_slot, before.active_slot);
  EXPECT_EQ(after.phase, ApplyPhase::kIdle);
  EXPECT_EQ(after.counters.applies, before.counters.applies);
  EXPECT_EQ(after.counters.rollbacks, before.counters.rollbacks);
  EXPECT_EQ(after.counters.health_failures, before.counters.health_failures);
  ASSERT_GE(after.active_slot, 0);
  EXPECT_EQ(after.slots[after.active_slot].version, 8u);
  EXPECT_EQ(after.slots[after.active_slot].key_fingerprint, KeyFp(9));
  ExpectHealthyActive(reloaded, v2);
}

TEST(UpdateAgentTest, ManifestCorruptionFailsClosed) {
  const std::string dir = MakeTempDir("corrupt");
  const std::string manifest = dir + "/slots-6.bin";
  {
    UpdateAgent agent(6, manifest);
    ASSERT_TRUE(agent.Apply(Image(1, 2048), 1, KeyFp(1), HealthyCheck).ok());
  }
  const auto pristine = [&] {
    std::ifstream in(manifest, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }();
  ASSERT_GT(pristine.size(), 600u);

  const auto rewrite = [&](std::vector<char> bytes) {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  {  // flipped bit deep in the image region -> payload CRC rejects it
    auto damaged = pristine;
    damaged[damaged.size() - 100] ^= 0x40;
    rewrite(damaged);
    UpdateAgent agent(6, manifest);
    Status status = agent.Recover();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::kCorruptPackage) << status.message();
  }
  {  // truncated mid-payload
    auto damaged = pristine;
    damaged.resize(damaged.size() / 2);
    rewrite(damaged);
    UpdateAgent agent(6, manifest);
    EXPECT_EQ(agent.Recover().code(), ErrorCode::kCorruptPackage);
  }
  {  // another device's manifest must not be adopted
    rewrite(pristine);
    UpdateAgent agent(66, manifest);
    EXPECT_EQ(agent.Recover().code(), ErrorCode::kFailedPrecondition);
  }
  {  // pristine bytes still load (the harness itself is sound)
    rewrite(pristine);
    UpdateAgent agent(6, manifest);
    EXPECT_TRUE(agent.Recover().ok());
    EXPECT_TRUE(agent.ActiveCrcValid());
  }
}

// The soak invariant, distilled: across a seeded storm of applies where
// any step may crash or fail health, the active slot — checked through a
// fresh reload every round, as the sweep does — is always CRC-valid and
// always the last image that fully passed health (epoch-current), with
// rollbacks never exceeding the failures that caused them.
TEST(UpdateAgentTest, SeededChaosAppliesKeepActiveSlotValid) {
  const std::string dir = MakeTempDir("chaos");
  const std::string manifest = dir + "/slots-8.bin";
  Xoshiro256 rng(0xA6E27);
  std::vector<uint8_t> expected;  // what the device must keep running
  uint64_t failures = 0;

  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    UpdateAgent agent(8, manifest);  // every round is a fresh boot
    ASSERT_TRUE(agent.Recover().ok());

    const auto image = Image(0x9000 + round, 256 + rng.NextBounded(512));
    const auto fp = KeyFp(static_cast<uint8_t>(1 + rng.NextBounded(4)));
    const uint64_t draw = rng.NextBounded(6);
    if (draw < 2) {  // 2/6: crash at a random phase
      agent.ArmCrash(static_cast<CrashPoint>(1 + rng.NextBounded(4)));
    } else if (draw == 2) {  // 1/6: health rejection
      agent.ArmHealthFailures(1);
    }
    Status status =
        agent.Apply(image, 100 + round, fp, HealthyCheck);
    if (status.ok()) {
      expected = image;
    } else {
      ++failures;
    }

    // The sweep's view: reboot, recover, assert the invariant.
    UpdateAgent swept(8, manifest);
    ASSERT_TRUE(swept.Recover().ok());
    ExpectHealthyActive(swept, expected);
    EXPECT_LE(swept.state().counters.rollbacks, failures);
  }
  // The storm must have exercised both failure modes to prove anything.
  UpdateAgent final_agent(8, manifest);
  ASSERT_TRUE(final_agent.Recover().ok());
  EXPECT_GT(final_agent.state().counters.crash_recoveries, 0u);
  EXPECT_GT(final_agent.state().counters.health_failures, 0u);
}

// Probabilistic injection (the soak's knob) is deterministic in its seed
// and always recoverable.
TEST(UpdateAgentTest, ProbabilisticCrashInjectionIsSeededAndRecoverable) {
  const std::string dir = MakeTempDir("prob");
  uint64_t crashes_a = 0, crashes_b = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const std::string manifest =
        dir + "/slots-p" + std::to_string(pass) + ".bin";
    UpdateAgent agent(20, manifest);
    agent.SetCrashInjection(0.4, 0xFEED);
    uint64_t& crashes = pass == 0 ? crashes_a : crashes_b;
    for (int i = 0; i < 40; ++i) {
      Status status =
          agent.Apply(Image(i, 300), 1 + i, KeyFp(1), HealthyCheck);
      if (!status.ok()) {
        ASSERT_TRUE(UpdateAgent::IsInjectedCrash(status)) << status.message();
        ++crashes;
        ASSERT_TRUE(agent.Recover().ok());
      }
      EXPECT_TRUE(agent.ActiveCrcValid());
    }
  }
  EXPECT_GT(crashes_a, 0u);
  EXPECT_EQ(crashes_a, crashes_b);  // same seed, same storm
}

}  // namespace
}  // namespace eric::agent
