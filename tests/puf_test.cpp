// Tests for the arbiter-PUF model, PUF key generator, and quality metrics.
#include <gtest/gtest.h>

#include "puf/arbiter_puf.h"
#include "puf/puf_key_generator.h"
#include "puf/puf_metrics.h"

namespace eric::puf {
namespace {

TEST(ArbiterPufTest, DeterministicPerDevice) {
  ArbiterPuf a(8, /*device_seed=*/1, /*instance=*/0);
  ArbiterPuf b(8, /*device_seed=*/1, /*instance=*/0);
  for (uint64_t c = 0; c < 256; ++c) {
    EXPECT_EQ(a.EvaluateIdeal(c), b.EvaluateIdeal(c)) << c;
  }
}

TEST(ArbiterPufTest, DevicesDiffer) {
  ArbiterPuf a(8, 1, 0), b(8, 2, 0);
  int differing = 0;
  for (uint64_t c = 0; c < 256; ++c) {
    differing += a.EvaluateIdeal(c) != b.EvaluateIdeal(c);
  }
  // Ideal uniqueness is ~50 % on average, but a single device pair under
  // the linear delay model has high variance (challenge responses are
  // correlated); a broad band still proves device separation.
  EXPECT_GT(differing, 40);
  EXPECT_LT(differing, 216);
}

TEST(ArbiterPufTest, InstancesOnSameDeviceDiffer) {
  ArbiterPuf a(8, 1, 0), b(8, 1, 1);
  int differing = 0;
  for (uint64_t c = 0; c < 256; ++c) {
    differing += a.EvaluateIdeal(c) != b.EvaluateIdeal(c);
  }
  EXPECT_GT(differing, 64);
}

TEST(ArbiterPufTest, ChallengeChangesResponse) {
  ArbiterPuf puf(8, 3, 0);
  int ones = 0;
  for (uint64_t c = 0; c < 256; ++c) ones += puf.EvaluateIdeal(c);
  // Not constant (a stuck PUF would be 0 or 256).
  EXPECT_GT(ones, 32);
  EXPECT_LT(ones, 224);
}

TEST(ArbiterPufTest, NoiseFlipsOnlyNearThreshold) {
  PufProcessModel model;
  model.noise_sigma = 0.05;
  ArbiterPuf puf(8, 7, 0, model);
  Xoshiro256 rng(99);
  for (uint64_t c = 0; c < 64; ++c) {
    const double margin = puf.DelayDifference(c);
    if (std::abs(margin) > 0.5) {
      // Far from threshold: 20 measurements must agree with ideal.
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(puf.EvaluateNoisy(c, rng), puf.EvaluateIdeal(c))
            << "challenge " << c << " margin " << margin;
      }
    }
  }
}

TEST(ArbiterPufTest, MajorityVotingStabilizes) {
  PufProcessModel noisy;
  noisy.noise_sigma = 0.3;  // deliberately bad silicon
  ArbiterPuf puf(8, 11, 0, noisy);
  Xoshiro256 rng(5);
  int stable_disagreements = 0;
  for (uint64_t c = 0; c < 128; ++c) {
    const bool ideal = puf.EvaluateIdeal(c);
    if (std::abs(puf.DelayDifference(c)) < 0.2) continue;  // metastable bits
    if (puf.EvaluateStabilized(c, rng, 25) != ideal) ++stable_disagreements;
  }
  EXPECT_LE(stable_disagreements, 2);
}

TEST(ArbiterPufTest, DelayDifferenceIsLinearish) {
  // The additive model must respond to every challenge bit: flipping one
  // challenge bit must change the delay difference for most challenges.
  ArbiterPuf puf(8, 13, 0);
  int changed = 0;
  for (uint64_t c = 0; c < 128; ++c) {
    if (puf.DelayDifference(c) != puf.DelayDifference(c ^ 1)) ++changed;
  }
  EXPECT_EQ(changed, 128);
}

// --- PKG -----------------------------------------------------------------

TEST(PkgTest, RawMajorityKeyIsMostlyStable) {
  PufKeyGenerator pkg(/*device_seed=*/42);
  Xoshiro256 rng1(1), rng2(2);
  const auto k1 = pkg.GenerateKey(rng1);
  const auto k2 = pkg.GenerateKey(rng2);
  // Plain temporal majority leaves the occasional metastable bit — that is
  // precisely why the fuzzy extractor below exists.
  int differing_bits = 0;
  for (size_t i = 0; i < k1.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(k1[i] ^ k2[i]));
  }
  EXPECT_LE(differing_bits, 8);
}

TEST(PkgTest, FuzzyExtractorRegeneratesExactKey) {
  PufKeyGenerator pkg(/*device_seed=*/42);
  Xoshiro256 enroll_rng(1);
  const auto enrollment = pkg.Enroll(enroll_rng);
  // Many power-ups, each with fresh measurement noise: the helper data
  // must recover the exact enrolled key every time.
  for (uint64_t powerup = 0; powerup < 10; ++powerup) {
    Xoshiro256 rng(1000 + powerup);
    EXPECT_EQ(pkg.RegenerateKey(enrollment.helper, rng), enrollment.key)
        << "power-up " << powerup;
  }
}

TEST(PkgTest, HelperDataIsUselessOnWrongDevice) {
  PufKeyGenerator device_a(42), device_b(43);
  Xoshiro256 rng(1);
  const auto enrollment = device_a.Enroll(rng);
  Xoshiro256 rng2(2);
  const auto stolen = device_b.RegenerateKey(enrollment.helper, rng2);
  // Device B's silicon decodes garbage: a large fraction of bits differ.
  int differing_bits = 0;
  for (size_t i = 0; i < stolen.size(); ++i) {
    differing_bits += std::popcount(
        static_cast<unsigned>(stolen[i] ^ enrollment.key[i]));
  }
  EXPECT_GT(differing_bits, 60);
}

TEST(PkgTest, EnrollmentIsDeterministicPerDevice) {
  PufKeyGenerator pkg(77);
  Xoshiro256 r1(1), r2(9);
  // Key derivation is from noise-free silicon, so two enrollments agree on
  // the key (helper data may differ — it absorbs the measurement noise).
  EXPECT_EQ(pkg.Enroll(r1).key, pkg.Enroll(r2).key);
}

TEST(PkgTest, KeyMatchesEnrollment) {
  PufKeyGenerator pkg(/*device_seed=*/43);
  Xoshiro256 rng(1);
  const auto live = pkg.GenerateKey(rng);
  const auto enrolled = pkg.IdealKey();
  int differing_bits = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    differing_bits +=
        std::popcount(static_cast<unsigned>(live[i] ^ enrolled[i]));
  }
  EXPECT_LE(differing_bits, 1);
}

TEST(PkgTest, DevicesGetDistinctKeys) {
  PufKeyGenerator a(100), b(101);
  const auto ka = a.IdealKey();
  const auto kb = b.IdealKey();
  int differing_bits = 0;
  for (size_t i = 0; i < ka.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(ka[i] ^ kb[i]));
  }
  // Ideal: ~128 of 256 bits differ.
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

TEST(PkgTest, KeyIsNotDegenerate) {
  PufKeyGenerator pkg(7);
  const auto key = pkg.IdealKey();
  int ones = 0;
  for (uint8_t byte : key) ones += std::popcount(static_cast<unsigned>(byte));
  EXPECT_GT(ones, 64);
  EXPECT_LT(ones, 192);
}

TEST(PkgTest, ChallengeScheduleIsPublicAndFixed) {
  PufKeyGenerator a(1), b(2);
  for (int i = 0; i < 32; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      EXPECT_EQ(a.ScheduledChallenge(i, bit), b.ScheduledChallenge(i, bit));
      EXPECT_LT(a.ScheduledChallenge(i, bit), 256u);  // 8-bit challenges
    }
  }
}

TEST(PkgTest, TableIConfiguration) {
  // The default PKG matches Table I: 32 instances x 8-bit challenges.
  PufKeyGenerator pkg(1);
  EXPECT_EQ(pkg.config().instances, 32);
  EXPECT_EQ(pkg.config().challenge_bits, 8);
  EXPECT_EQ(pkg.config().instances * pkg.config().bits_per_instance, 256);
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, HammingDistance) {
  EXPECT_EQ(HammingDistanceBits({0x00}, {0xFF}), 8);
  EXPECT_EQ(HammingDistanceBits({0xF0, 0x0F}, {0x0F, 0x0F}), 8);
  EXPECT_EQ(HammingDistanceBits({0xAA}, {0xAA}), 0);
}

TEST(MetricsTest, QualityInHealthyBands) {
  PufStudyConfig config;
  config.devices = 40;
  config.challenges = 64;
  config.remeasurements = 15;
  const PufQualityReport report = CharacterizeArbiterPuf(config);

  // Canonical arbiter-PUF quality bands (Maes & Verbauwhede).
  EXPECT_GT(report.uniformity_percent, 35.0);
  EXPECT_LT(report.uniformity_percent, 65.0);
  EXPECT_GT(report.uniqueness_percent, 40.0);
  EXPECT_LT(report.uniqueness_percent, 60.0);
  EXPECT_GT(report.reliability_percent, 90.0);
}

TEST(MetricsTest, MoreNoiseLowersReliability) {
  PufStudyConfig quiet, loud;
  quiet.devices = loud.devices = 20;
  quiet.challenges = loud.challenges = 32;
  quiet.process.noise_sigma = 0.02;
  loud.process.noise_sigma = 0.5;
  const auto q = CharacterizeArbiterPuf(quiet);
  const auto l = CharacterizeArbiterPuf(loud);
  EXPECT_GT(q.reliability_percent, l.reliability_percent);
}

TEST(MetricsTest, ReportEchoesConfig) {
  PufStudyConfig config;
  config.devices = 10;
  config.challenges = 16;
  config.remeasurements = 5;
  const auto report = CharacterizeArbiterPuf(config);
  EXPECT_EQ(report.devices, 10);
  EXPECT_EQ(report.challenges, 16);
  EXPECT_EQ(report.remeasurements, 5);
}

}  // namespace
}  // namespace eric::puf
