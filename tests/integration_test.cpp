// Cross-module integration scenarios that exercise long paths through the
// whole stack at once — the kind of sequences a deployment would hit.
#include <gtest/gtest.h>

#include "analysis/static_analysis.h"
#include "core/encryption_policy.h"
#include "core/group_key.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "net/channel.h"
#include "workloads/workloads.h"

namespace eric {
namespace {

// One device receives a sequence of different programs under different
// policies — state (keystream latches, cipher caches) must never bleed
// between packages.
TEST(IntegrationTest, BackToBackPackagesOnOneDevice) {
  crypto::KeyConfig config;
  core::TrustedDevice device(0x1B7E6, config);
  core::SoftwareSource source(device.Enroll(), config);

  struct Step {
    const char* workload;
    core::EncryptionPolicy policy;
  };
  const Step steps[] = {
      {"bitcount", core::EncryptionPolicy::Full()},
      {"crc32", core::EncryptionPolicy::PartialRandom(0.3)},
      {"bitcount", core::EncryptionPolicy::PartialRandom(0.9)},
      {"sha", core::EncryptionPolicy::None()},
      {"crc32", core::EncryptionPolicy::Full()},
  };
  for (const Step& step : steps) {
    const auto* w = workloads::FindWorkload(step.workload);
    ASSERT_NE(w, nullptr);
    auto built = source.CompileAndPackage(w->source, step.policy);
    ASSERT_TRUE(built.ok()) << step.workload;
    auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
    ASSERT_TRUE(run.ok()) << step.workload << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, w->reference()) << step.workload;
  }
}

// A rejected (tampered) package must not poison subsequent valid ones.
TEST(IntegrationTest, RejectionLeavesDeviceUsable) {
  crypto::KeyConfig config;
  core::TrustedDevice device(0x1B7E7, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto* w = workloads::FindWorkload("basicmath");
  auto built = source.CompileAndPackage(w->source,
                                        core::EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto wire = pkg::Serialize(built->packaging.package);

  auto tampered = wire;
  tampered[60] ^= 0x04;
  EXPECT_FALSE(device.ReceiveAndRun(tampered).ok());
  auto clean = device.ReceiveAndRun(wire);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->exec.exit_code, w->reference());
}

// Two sources with different epochs target the same silicon: only the
// matching-epoch package runs on each configuration.
TEST(IntegrationTest, EpochIsolationBetweenSources) {
  const uint64_t seed = 0x1B7E8;
  crypto::KeyConfig epoch0, epoch1;
  epoch1.epoch = 1;

  core::TrustedDevice device_e0(seed, epoch0);
  core::TrustedDevice device_e1(seed, epoch1);  // same chip, rotated KMU
  core::SoftwareSource source_e0(device_e0.Enroll(), epoch0);
  core::SoftwareSource source_e1(device_e1.Enroll(), epoch1);

  const auto* w = workloads::FindWorkload("bitcount");
  auto p0 = source_e0.CompileAndPackage(w->source,
                                        core::EncryptionPolicy::Full());
  auto p1 = source_e1.CompileAndPackage(w->source,
                                        core::EncryptionPolicy::Full());
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  const auto wire0 = pkg::Serialize(p0->packaging.package);
  const auto wire1 = pkg::Serialize(p1->packaging.package);

  EXPECT_TRUE(device_e0.ReceiveAndRun(wire0).ok());
  EXPECT_FALSE(device_e0.ReceiveAndRun(wire1).ok());
  EXPECT_TRUE(device_e1.ReceiveAndRun(wire1).ok());
  EXPECT_FALSE(device_e1.ReceiveAndRun(wire0).ok());
}

// The full hostile pipeline: group fleet + channel faults + attacker
// analysis, all in one pass.
TEST(IntegrationTest, FleetThroughHostileChannel) {
  crypto::KeyConfig config;
  auto group = core::DeviceGroup::Provision({0xAA1, 0xAA2, 0xAA3}, config);
  ASSERT_TRUE(group.ok());
  core::SoftwareSource source(group->group_key(), config);
  const auto* w = workloads::FindWorkload("stringsearch");
  auto built = source.CompileAndPackage(
      w->source, core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  const auto wire = pkg::Serialize(built->packaging.package);

  // Clean delivery to member 0.
  {
    net::Channel channel;
    auto run = group->RunOnMember(0, channel.Deliver(wire));
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->exec.exit_code, w->reference());
  }
  // Bit-flipped delivery to member 1: rejected.
  {
    net::ChannelConfig cfg;
    cfg.fault = net::ChannelFault::kRandomBitFlips;
    net::Channel channel(cfg);
    EXPECT_FALSE(group->RunOnMember(1, channel.Deliver(wire)).ok());
  }
  // Attacker captures the wire bytes: the protected fraction is opaque.
  {
    const auto parsed = pkg::Parse(wire);
    ASSERT_TRUE(parsed.ok());
    const auto report = analysis::SweepDisassemble(std::span<const uint8_t>(
        parsed->text.data(), built->compile.program.text_bytes));
    EXPECT_LT(report.valid_fraction(), 0.95);
  }
  // Member 2 still fine after all that.
  {
    auto run = group->RunOnMember(2, wire);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->exec.exit_code, w->reference());
  }
}

// Console I/O survives the encrypted path byte-for-byte.
TEST(IntegrationTest, ConsoleOutputThroughEncryptedPath) {
  crypto::KeyConfig config;
  core::TrustedDevice device(0x1B7E9, config);
  core::SoftwareSource source(device.Enroll(), config);
  const char* program = R"(
    fn print_digit(d) { putc(48 + d); return 0; }
    fn main() {
      var n = 90125;
      // print digits most-significant first
      var div = 10000;
      while (div > 0) {
        print_digit((n / div) % 10);
        div = div / 10;
      }
      putc(10);
      return 0;
    }
  )";
  auto built =
      source.CompileAndPackage(program, core::EncryptionPolicy::Full());
  ASSERT_TRUE(built.ok());
  auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->console_output, "90125\n");
}

}  // namespace
}  // namespace eric
