// HDE-internal tests: decryption-walk edge cases, cycle accounting,
// CipherWalk properties, and hostile-package handling.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "core/encryption_policy.h"
#include "core/hde.h"
#include "core/software_source.h"
#include "support/rng.h"

namespace eric::core {
namespace {

constexpr uint64_t kSeed = 0x4DE;

struct Rig {
  Rig() : hde(kSeed, config), key(hde.EnrollAndShareKey()) {}
  crypto::KeyConfig config;
  HardwareDecryptionEngine hde;
  crypto::Key256 key;
};

pkg::Package BuildFor(const Rig& rig, const char* program,
                      const EncryptionPolicy& policy,
                      compiler::CompileOptions options = {}) {
  SoftwareSource source(rig.key, rig.config);
  auto built = source.CompileAndPackage(program, policy, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built->packaging.package;
}

const char* kTinyProgram = "fn main() { return 7; }";

TEST(HdeTest, CycleAccountingAllUnitsCharge) {
  Rig rig;
  const auto package = BuildFor(rig, kTinyProgram, EncryptionPolicy::Full());
  auto out = rig.hde.Process(package);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->cycles.key_regeneration, 0u);
  EXPECT_GT(out->cycles.decryption, 0u);
  EXPECT_GT(out->cycles.signature, 0u);
  EXPECT_GT(out->cycles.validation, 0u);
  EXPECT_EQ(out->cycles.total(),
            out->cycles.key_regeneration + out->cycles.decryption +
                out->cycles.signature + out->cycles.validation);
}

TEST(HdeTest, NoneModeSkipsDecryptionCycles) {
  Rig rig;
  const auto package = BuildFor(rig, kTinyProgram, EncryptionPolicy::None());
  auto out = rig.hde.Process(package);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->cycles.decryption, 0u);
  EXPECT_GT(out->cycles.signature, 0u);  // hashing still happens
}

TEST(HdeTest, DecryptionCyclesTrackEncryptedCoverage) {
  Rig rig;
  const char* program = R"(
    fn main() {
      var s = 0;
      var i = 0;
      while (i < 40) { s = s + i; i = i + 1; }
      return s;
    }
  )";
  const auto full = BuildFor(rig, program, EncryptionPolicy::Full());
  const auto sparse =
      BuildFor(rig, program, EncryptionPolicy::PartialRandom(0.25));
  auto full_out = rig.hde.Process(full);
  auto sparse_out = rig.hde.Process(sparse);
  ASSERT_TRUE(full_out.ok());
  ASSERT_TRUE(sparse_out.ok());
  // Scattered 2–4 byte fragments cannot amortize 32-byte keystream blocks,
  // so sparse partial encryption may cost almost as much as full — but
  // never meaningfully more (the latch makes block generation per-block,
  // not per-fragment).
  EXPECT_LE(sparse_out->cycles.decryption,
            full_out->cycles.decryption + full_out->cycles.decryption / 5);
  EXPECT_GT(sparse_out->cycles.decryption, 0u);
}

TEST(HdeTest, DeterministicAcrossRepeatedProcessing) {
  Rig rig;
  const auto package = BuildFor(rig, kTinyProgram, EncryptionPolicy::Full());
  auto first = rig.hde.Process(package);
  auto second = rig.hde.Process(package);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->image, second->image);
  EXPECT_EQ(first->cycles.total(), second->cycles.total());
}

TEST(HdeTest, DecryptedImageBitExact) {
  Rig rig;
  SoftwareSource source(rig.key, rig.config);
  auto built = source.CompileAndPackage(kTinyProgram,
                                        EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(built.ok());
  auto out = rig.hde.Process(built->packaging.package);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->image, built->compile.program.image);
}

TEST(HdeTest, MapShorterThanClaimedInstrCountRejected) {
  Rig rig;
  auto package = BuildFor(rig, kTinyProgram, EncryptionPolicy::PartialRandom(0.5));
  package.instr_count += 64;  // walk would overrun the image
  auto out = rig.hde.Process(package);
  ASSERT_FALSE(out.ok());
}

TEST(HdeTest, HostileRandomPackagesNeverValidate) {
  Rig rig;
  Xoshiro256 rng(0xBAD5EED);
  int rejected = 0;
  for (int trial = 0; trial < 100; ++trial) {
    pkg::Package package;
    package.mode = static_cast<pkg::EncryptionMode>(rng.NextBounded(4));
    package.instr_count = static_cast<uint32_t>(rng.NextBounded(50));
    package.key_epoch = 0;
    package.text.resize(rng.NextBounded(300));
    for (auto& b : package.text) b = static_cast<uint8_t>(rng.Next());
    if (package.mode == pkg::EncryptionMode::kPartial ||
        package.mode == pkg::EncryptionMode::kField) {
      package.encryption_map = BitVector(package.instr_count);
      for (size_t i = 0; i < package.encryption_map.size(); ++i) {
        package.encryption_map.Set(i, rng.NextBool());
      }
    }
    if (package.mode == pkg::EncryptionMode::kField) {
      package.field_specs.push_back(
          {static_cast<uint8_t>(isa::OpClass::kLoad), 20, 31});
    }
    for (auto& b : package.signature) b = static_cast<uint8_t>(rng.Next());
    auto out = rig.hde.Process(package);
    rejected += !out.ok();
  }
  // Forging a SHA-256 match by chance is impossible.
  EXPECT_EQ(rejected, 100);
}

// --- CipherWalk properties -------------------------------------------------

TEST(CipherWalkTest, NoneModeTouchesNothing) {
  std::vector<uint8_t> image(64, 0xAA);
  CipherWalkInput input;
  input.image = image;
  input.mode = pkg::EncryptionMode::kNone;
  const size_t transformed =
      CipherWalk(input, [](std::span<uint8_t>, uint64_t) { FAIL(); });
  EXPECT_EQ(transformed, 0u);
}

TEST(CipherWalkTest, FullModeTransformsWholeImage) {
  std::vector<uint8_t> image(64, 0);
  CipherWalkInput input;
  input.image = image;
  input.mode = pkg::EncryptionMode::kFull;
  size_t called_bytes = 0;
  const size_t transformed =
      CipherWalk(input, [&](std::span<uint8_t> data, uint64_t offset) {
        EXPECT_EQ(offset, 0u);
        called_bytes = data.size();
      });
  EXPECT_EQ(transformed, 64u);
  EXPECT_EQ(called_bytes, 64u);
}

TEST(CipherWalkTest, PartialModeRespectsMapAndOffsets) {
  // Three instructions: sizes 4, 2, 4; map selects #0 and #2.
  std::vector<uint8_t> image(10, 0);
  const std::vector<uint8_t> sizes = {4, 2, 4};
  BitVector map(3);
  map.Set(0, true);
  map.Set(2, true);
  CipherWalkInput input;
  input.image = image;
  input.mode = pkg::EncryptionMode::kPartial;
  input.map = &map;
  input.instr_sizes = sizes;
  std::vector<std::pair<uint64_t, size_t>> calls;
  const size_t transformed =
      CipherWalk(input, [&](std::span<uint8_t> data, uint64_t offset) {
        calls.push_back({offset, data.size()});
      });
  EXPECT_EQ(transformed, 8u);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], (std::pair<uint64_t, size_t>{0, 4}));
  EXPECT_EQ(calls[1], (std::pair<uint64_t, size_t>{6, 4}));
}

TEST(CipherWalkTest, EncryptDecryptIsIdentityAcrossModes) {
  Xoshiro256 rng(5);
  crypto::Key256 key;
  for (auto& b : key) b = static_cast<uint8_t>(rng.Next());
  const crypto::XorCipher cipher(key);
  const CipherFn fn = [&cipher](std::span<uint8_t> data, uint64_t offset) {
    cipher.Apply(data, offset);
  };

  std::vector<uint8_t> image(40);
  for (auto& b : image) b = static_cast<uint8_t>(rng.Next());
  const auto original = image;
  const std::vector<uint8_t> sizes = {4, 4, 2, 4, 2, 4, 4, 2, 4, 2, 4, 4};
  ASSERT_EQ(static_cast<size_t>(4 + 4 + 2 + 4 + 2 + 4 + 4 + 2 + 4 + 2 + 4 + 4),
            image.size());
  BitVector map(sizes.size());
  for (size_t i = 0; i < sizes.size(); i += 2) map.Set(i, true);

  CipherWalkInput input;
  input.image = image;
  input.mode = pkg::EncryptionMode::kPartial;
  input.map = &map;
  input.instr_sizes = sizes;
  CipherWalk(input, fn);
  EXPECT_NE(image, original);
  CipherWalk(input, fn);
  EXPECT_EQ(image, original);
}

TEST(HdeTest, RejectsPackageTargetingForeignIsa) {
  Rig rig;
  compiler::CompileOptions options;
  options.isa = isa::IsaId::kRv32I;
  const auto package =
      BuildFor(rig, kTinyProgram, EncryptionPolicy::Full(), options);
  EXPECT_EQ(package.isa, isa::IsaId::kRv32I);
  // The default rig is an RV64GC device: an RV32I package would decrypt
  // and authenticate fine (same key, same signature scheme) and then
  // execute as garbage, so the HDE must refuse it before any crypto
  // work — the same error class as a key mismatch.
  auto rejected = rig.hde.Process(package);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kAuthenticationFailed);
  // An RV32I device with the same PUF seed regenerates the same key and
  // accepts the same bytes: the gate is about the ISA, not the key.
  HardwareDecryptionEngine hde32(kSeed, rig.config, CipherKind::kXor,
                                 HdeCycleParams{}, isa::IsaId::kRv32I);
  EXPECT_EQ(hde32.EnrollAndShareKey(), rig.key);  // same PUF seed, same key
  auto accepted = hde32.Process(package);
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
}

}  // namespace
}  // namespace eric::core
