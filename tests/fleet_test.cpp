// Fleet subsystem tests: sharded registry under concurrency, encrypt-once
// cache correctness (a cached artifact is exactly as device-bound as a
// freshly sealed one), campaign retry behaviour under every channel
// fault, and the campaign scheduler (waves, canary gates, throttling,
// pause/resume/cancel).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

#include "fleet/campaign_scheduler.h"
#include "fleet/deployment_engine.h"
#include "fleet/rotation_campaign.h"
#include "net/channel.h"
#include "pkg/delta.h"
#include "workloads/workloads.h"

namespace eric::fleet {
namespace {

// sum of i*i for i in 1..10
constexpr int64_t kTinyProgramResult = 385;
constexpr const char* kTinyProgram = R"(
  fn main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) { sum = sum + i * i; i = i + 1; }
    return sum;
  }
)";

// --- DeviceRegistry -----------------------------------------------------------

TEST(DeviceRegistryTest, EnrollLookupRoundTrip) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto id = registry.Enroll(0xD0, group);
  ASSERT_TRUE(id.ok());

  auto info = registry.Lookup(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, *id);
  EXPECT_EQ(info->device_seed, 0xD0u);
  EXPECT_EQ(info->group, group);
  EXPECT_EQ(info->status, DeviceStatus::kEnrolled);

  EXPECT_EQ(registry.Lookup(9999).status().code(), ErrorCode::kNotFound);
}

TEST(DeviceRegistryTest, GroupedDeviceDeploysWithGroupKey) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto id = registry.Enroll(0xD1, group);
  ASSERT_TRUE(id.ok());
  auto group_key = registry.GroupKey(group);
  auto deploy_key = registry.DeploymentKey(*id);
  ASSERT_TRUE(group_key.ok());
  ASSERT_TRUE(deploy_key.ok());
  EXPECT_EQ(*group_key, *deploy_key);

  // Ungrouped devices get their own key.
  auto solo = registry.Enroll(0xD2);
  ASSERT_TRUE(solo.ok());
  auto solo_key = registry.DeploymentKey(*solo);
  ASSERT_TRUE(solo_key.ok());
  EXPECT_FALSE(*solo_key == *group_key);
}

TEST(DeviceRegistryTest, RevokeSemantics) {
  DeviceRegistry registry;
  auto id = registry.Enroll(0xD3);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.Revoke(12345).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(registry.Revoke(*id).ok());
  EXPECT_EQ(registry.Revoke(*id).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(registry.Lookup(*id)->status, DeviceStatus::kRevoked);

  // Revoked devices refuse dispatch.
  const std::vector<uint8_t> bytes(16, 0);
  EXPECT_EQ(registry.Dispatch(*id, bytes).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(DeviceRegistryTest, ConcurrentEnrollLookupRevoke) {
  RegistryConfig config;
  config.shard_count = 8;
  DeviceRegistry registry(config);
  const GroupId group = registry.CreateGroup("swarm");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::vector<DeviceId>> enrolled(kThreads);
  std::atomic<int> lookup_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = registry.Enroll(
            0xC0FFEE00u + static_cast<uint64_t>(t * kPerThread + i), group);
        if (!id.ok()) { ++lookup_errors; continue; }
        enrolled[static_cast<size_t>(t)].push_back(*id);
        // Immediately read back through the striped table.
        auto info = registry.Lookup(*id);
        if (!info.ok() || info->group != group) ++lookup_errors;
        // Revoke every 4th enrollment from its own thread.
        if (i % 4 == 3 && !registry.Revoke(*id).ok()) ++lookup_errors;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(lookup_errors.load(), 0);
  std::set<DeviceId> unique_ids;
  for (const auto& ids : enrolled) unique_ids.insert(ids.begin(), ids.end());
  EXPECT_EQ(unique_ids.size(),
            static_cast<size_t>(kThreads) * kPerThread);

  const auto stats = registry.Stats();
  EXPECT_EQ(stats.devices, static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.revoked, static_cast<size_t>(kThreads) * (kPerThread / 4));
  EXPECT_EQ(stats.groups, 1u);
  auto members = registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), unique_ids.size());
}

// Revoke-then-re-enroll is how a fleet replaces compromised or RMA'd
// silicon: the old record stays (soft delete, its id is burned forever),
// a new record with a fresh id takes over — even for the same physical
// seed. These semantics are what the persistence layer's WAL replay must
// reproduce byte for byte, so they are pinned here.
TEST(DeviceRegistryTest, RevokeThenReEnrollReplacesDevice) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto first = registry.Enroll(0x5111C0, group);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(registry.Revoke(*first).ok());

  // Same silicon seed, fresh enrollment: a distinct, live record.
  auto second = registry.Enroll(0x5111C0, group);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
  EXPECT_EQ(registry.Lookup(*first)->status, DeviceStatus::kRevoked);
  EXPECT_EQ(registry.Lookup(*second)->status, DeviceStatus::kEnrolled);

  // The replacement deploys on the group key; the corpse still refuses.
  PackageCache cache;
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  auto artifact = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                   core::EncryptionPolicy::Full());
  ASSERT_TRUE(artifact.ok());
  auto run = registry.Dispatch(*second, (*artifact)->wire);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
  EXPECT_EQ(registry.Dispatch(*first, (*artifact)->wire).status().code(),
            ErrorCode::kFailedPrecondition);

  // Membership keeps both: history is never rewritten.
  auto members = registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 2u);
  const auto stats = registry.Stats();
  EXPECT_EQ(stats.devices, 2u);
  EXPECT_EQ(stats.revoked, 1u);
}

// Group membership under concurrent revoke/re-enroll churn: mutators
// cycle devices through revoke -> replacement enrollment while readers
// hammer GroupMembers and Lookup. The membership list must never show a
// duplicate id or a torn read, and the final census must account for
// every enrollment exactly once.
TEST(DeviceRegistryTest, GroupMembershipConsistentUnderRevokeReEnrollRaces) {
  RegistryConfig config;
  config.shard_count = 8;
  DeviceRegistry registry(config);
  const GroupId group = registry.CreateGroup("churn");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};

  // Reader thread: membership snapshots must always be duplicate-free
  // and every listed member must resolve through Lookup.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto members = registry.GroupMembers(group);
      if (!members.ok()) { ++errors; continue; }
      std::set<DeviceId> unique(members->begin(), members->end());
      if (unique.size() != members->size()) ++errors;
      for (DeviceId id : *members) {
        if (!registry.Lookup(id).ok()) ++errors;
      }
    }
  });

  std::vector<std::thread> mutators;
  for (int t = 0; t < kThreads; ++t) {
    mutators.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t seed =
            0xC1C1000 + static_cast<uint64_t>(t * kPerThread + i);
        auto id = registry.Enroll(seed, group);
        if (!id.ok()) { ++errors; continue; }
        if (!registry.Revoke(*id).ok()) ++errors;
        auto replacement = registry.Enroll(seed, group);
        if (!replacement.ok()) ++errors;
        else if (registry.Lookup(*replacement)->status !=
                 DeviceStatus::kEnrolled) {
          ++errors;
        }
      }
    });
  }
  for (auto& thread : mutators) thread.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(errors.load(), 0);
  constexpr size_t kEnrollments = 2u * kThreads * kPerThread;
  auto members = registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), kEnrollments);
  EXPECT_EQ(std::set<DeviceId>(members->begin(), members->end()).size(),
            kEnrollments);
  const auto stats = registry.Stats();
  EXPECT_EQ(stats.devices, kEnrollments);
  EXPECT_EQ(stats.revoked, kEnrollments / 2);
}

// --- PackageCache -------------------------------------------------------------

TEST(PackageCacheTest, HitOnSameInputsMissOnDifferent) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0xCA, group).ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  const auto policy = core::EncryptionPolicy::Full();

  PackageCache cache;
  auto first = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                policy);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                 policy);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared artifact
  EXPECT_EQ(cache.Stats().artifact_hits, 1u);
  EXPECT_EQ(cache.Stats().artifact_misses, 1u);

  // A different policy re-seals but does not recompile.
  auto partial = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                  core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(partial.ok());
  EXPECT_NE(first->get(), partial->get());
  EXPECT_EQ(cache.Stats().artifact_misses, 2u);
  EXPECT_EQ(cache.Stats().compile_misses, 1u);
  EXPECT_EQ(cache.Stats().compile_hits, 1u);

  // A different key epoch is a different artifact address.
  crypto::KeyConfig rotated = registry.key_config();
  rotated.epoch = 7;
  auto rotated_artifact = cache.GetOrBuild(kTinyProgram, *key, rotated,
                                           policy);
  ASSERT_TRUE(rotated_artifact.ok());
  EXPECT_EQ(cache.Stats().artifact_misses, 3u);
}

TEST(PackageCacheTest, CachedArtifactValidatesOnMembersRejectsElsewhere) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  std::vector<DeviceId> members;
  for (uint64_t i = 0; i < 5; ++i) {
    auto id = registry.Enroll(0xCAFE00 + i, group);
    ASSERT_TRUE(id.ok());
    members.push_back(*id);
  }
  // A device enrolled on its own key and one in a different group.
  auto outsider = registry.Enroll(0xBAD);
  ASSERT_TRUE(outsider.ok());
  const GroupId other_group = registry.CreateGroup("other");
  auto other_member = registry.Enroll(0xBAD2, other_group);
  ASSERT_TRUE(other_member.ok());

  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  PackageCache cache;
  auto artifact = cache.GetOrBuild(
      kTinyProgram, *key, registry.key_config(),
      core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(artifact.ok());

  // The one cached artifact validates and runs on EVERY group member...
  for (DeviceId member : members) {
    auto run = registry.Dispatch(member, (*artifact)->wire);
    ASSERT_TRUE(run.ok()) << "member " << member << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
  }
  // ...and only cache hits were spent serving them.
  EXPECT_EQ(cache.Stats().artifact_misses, 1u);

  // Non-members reject the same bytes (wrong PUF-based key -> bad digest).
  for (DeviceId stranger : {*outsider, *other_member}) {
    auto run = registry.Dispatch(stranger, (*artifact)->wire);
    EXPECT_FALSE(run.ok()) << "non-member " << stranger << " ran the package";
  }
}

TEST(PackageCacheTest, LruEvictsAtCapacity) {
  PackageCacheConfig config;
  config.shard_count = 1;
  config.max_artifacts_per_shard = 2;
  PackageCache cache(config);

  DeviceRegistry registry;
  auto id = registry.Enroll(0xE1);
  ASSERT_TRUE(id.ok());
  auto key = registry.DeploymentKey(*id);
  ASSERT_TRUE(key.ok());

  // Three distinct artifacts through a 2-slot shard.
  for (uint64_t epoch = 0; epoch < 3; ++epoch) {
    crypto::KeyConfig config_epoch = registry.key_config();
    config_epoch.epoch = epoch;
    ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *key, config_epoch,
                                 core::EncryptionPolicy::Full())
                    .ok());
  }
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.artifact_misses, 3u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.artifact_entries, 2u);
}

// A Clear() while GetOrBuild callers race must never invalidate a handed-out
// artifact (readers hold shared_ptrs) and must leave the cache genuinely
// empty, so post-clear seals are fresh builds. This is the key-epoch
// rotation hook: bump the epoch, Clear(), and the fleet re-seals.
TEST(PackageCacheTest, ClearUnderConcurrentGetOrBuildIsSafeAndFresh) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto device = registry.Enroll(0xC1EA2, group);
  ASSERT_TRUE(device.ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());

  PackageCache cache;
  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> builders;
  for (int t = 0; t < kThreads; ++t) {
    builders.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Three distinct artifact addresses (epochs) keep hits and misses
        // both in play while Clear() races.
        crypto::KeyConfig config = registry.key_config();
        config.epoch = static_cast<uint64_t>((t + i) % 3);
        auto artifact = cache.GetOrBuild(kTinyProgram, *key, config,
                                         core::EncryptionPolicy::Full());
        if (!artifact.ok() || (*artifact)->wire.empty()) ++errors;
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load()) {
      cache.Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& thread : builders) thread.join();
  stop.store(true);
  clearer.join();
  EXPECT_EQ(errors.load(), 0);

  // A final Clear() empties the cache for real...
  cache.Clear();
  EXPECT_EQ(cache.Stats().artifact_entries, 0u);
  // ...and the next build is fresh: a miss that still seals a wire image
  // every group member validates.
  const auto misses_before = cache.Stats().artifact_misses;
  auto fresh = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                core::EncryptionPolicy::Full());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(cache.Stats().artifact_misses, misses_before + 1);
  auto run = registry.Dispatch(*device, (*fresh)->wire);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
}

// The documented contract: hit/miss/eviction/invalidation counters are
// monotonic and every GetOrBuild counts exactly one hit or one miss —
// including the racing-builders case where both build and both count a
// miss — no matter how Clear() interleaves.
TEST(PackageCacheTest, StatsMonotonicUnderRacingGetOrBuildAndClear) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0x57A7, group).ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());

  PackageCache cache;
  constexpr int kThreads = 4;
  constexpr int kIterations = 30;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> builders;
  for (int t = 0; t < kThreads; ++t) {
    builders.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        crypto::KeyConfig config = registry.key_config();
        config.epoch = static_cast<uint64_t>((t + i) % 2);
        if (!cache.GetOrBuild(kTinyProgram, *key, config,
                              core::EncryptionPolicy::Full())
                 .ok()) {
          ++errors;
        }
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load()) {
      cache.Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Sample the monotonic counters while the race runs: none may ever
  // step backwards, no matter how Clear() interleaves.
  std::atomic<bool> monotonic{true};
  std::thread sampler([&] {
    PackageCacheStats last;
    while (!stop.load()) {
      const auto stats = cache.Stats();
      if (stats.artifact_hits < last.artifact_hits ||
          stats.artifact_misses < last.artifact_misses ||
          stats.compile_hits < last.compile_hits ||
          stats.compile_misses < last.compile_misses ||
          stats.evictions < last.evictions ||
          stats.invalidations < last.invalidations) {
        monotonic.store(false);
      }
      last = stats;
    }
  });
  for (auto& thread : builders) thread.join();
  stop.store(true);
  clearer.join();
  sampler.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(monotonic.load());

  // Exactly one hit or miss per call — double-builds both count misses,
  // so the identity holds with or without build races.
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.artifact_hits + stats.artifact_misses,
            static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(PackageCacheTest, TargetedInvalidationLeavesOtherKeysHot) {
  DeviceRegistry registry;
  const GroupId rotated = registry.CreateGroup("rotated");
  const GroupId bystander = registry.CreateGroup("bystander");
  ASSERT_TRUE(registry.Enroll(0x1A, rotated).ok());
  ASSERT_TRUE(registry.Enroll(0x1B, bystander).ok());
  auto rotated_key = registry.GroupKey(rotated);
  auto bystander_key = registry.GroupKey(bystander);
  ASSERT_TRUE(rotated_key.ok());
  ASSERT_TRUE(bystander_key.ok());
  const auto policy = core::EncryptionPolicy::Full();

  PackageCache cache;
  // Two policies under the rotated key (two artifacts), one under the
  // bystander key.
  ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *rotated_key,
                               registry.key_config(), policy)
                  .ok());
  ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *rotated_key,
                               registry.key_config(),
                               core::EncryptionPolicy::PartialRandom(0.5))
                  .ok());
  ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *bystander_key,
                               registry.key_config(), policy)
                  .ok());
  ASSERT_EQ(cache.Stats().artifact_entries, 3u);

  // Targeted invalidation drops exactly the rotated key's artifacts.
  EXPECT_EQ(cache.InvalidateKeyFingerprint(FingerprintKey(*rotated_key)), 2u);
  const auto after = cache.Stats();
  EXPECT_EQ(after.invalidations, 2u);
  EXPECT_EQ(after.artifact_entries, 1u);

  // The bystander stays hot (a hit), the rotated key re-seals (a miss) —
  // and the compile cache survived, so no recompilation either way.
  const auto misses_before = after.artifact_misses;
  ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *bystander_key,
                               registry.key_config(), policy)
                  .ok());
  EXPECT_EQ(cache.Stats().artifact_misses, misses_before);
  ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *rotated_key,
                               registry.key_config(), policy)
                  .ok());
  const auto final_stats = cache.Stats();
  EXPECT_EQ(final_stats.artifact_misses, misses_before + 1);
  EXPECT_EQ(final_stats.compile_misses, 1u);  // only the very first build

  // Unknown fingerprints invalidate nothing.
  EXPECT_EQ(cache.InvalidateKeyFingerprint(crypto::Sha256Digest{}), 0u);
}

// --- Key-epoch rotation -------------------------------------------------------

TEST(RotationTest, RotatedGroupRejectsOldSealsAndAcceptsNew) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("rotating");
  const GroupId other = registry.CreateGroup("steady");
  std::vector<DeviceId> members;
  for (uint64_t i = 0; i < 3; ++i) {
    auto id = registry.Enroll(0x201 + i, group);
    ASSERT_TRUE(id.ok());
    members.push_back(*id);
  }
  auto other_member = registry.Enroll(0x2FF, other);
  auto solo = registry.Enroll(0x2FE);
  ASSERT_TRUE(other_member.ok());
  ASSERT_TRUE(solo.ok());

  PackageCache cache;
  const auto policy = core::EncryptionPolicy::PartialRandom(0.5);
  auto old_context = registry.SealingContextFor(members[0]);
  ASSERT_TRUE(old_context.ok());
  auto old_artifact = cache.GetOrBuild(kTinyProgram, old_context->key,
                                       old_context->config, policy);
  ASSERT_TRUE(old_artifact.ok());
  auto other_context = registry.SealingContextFor(*other_member);
  ASSERT_TRUE(other_context.ok());
  auto other_artifact = cache.GetOrBuild(kTinyProgram, other_context->key,
                                         other_context->config, policy);
  ASSERT_TRUE(other_artifact.ok());

  auto rotation = registry.RotateGroupEpoch(group);
  ASSERT_TRUE(rotation.ok());
  EXPECT_TRUE(rotation->rotated);
  EXPECT_EQ(rotation->old_epoch, 0u);
  EXPECT_EQ(rotation->new_epoch, 1u);
  EXPECT_EQ(rotation->members_rekeyed, members.size());
  EXPECT_EQ(rotation->old_key_fingerprint,
            FingerprintKey(old_context->key));

  // Members reject the stale-epoch package...
  for (DeviceId member : members) {
    auto run = registry.Dispatch(member, (*old_artifact)->wire);
    EXPECT_FALSE(run.ok()) << "member " << member
                           << " accepted a stale-epoch package";
  }
  // ...and run a fresh seal under the new context on every member.
  auto new_context = registry.SealingContextFor(members[0]);
  ASSERT_TRUE(new_context.ok());
  EXPECT_EQ(new_context->config.epoch, 1u);
  EXPECT_FALSE(new_context->key == old_context->key);
  auto new_artifact = cache.GetOrBuild(kTinyProgram, new_context->key,
                                       new_context->config, policy);
  ASSERT_TRUE(new_artifact.ok());
  for (DeviceId member : members) {
    auto run = registry.Dispatch(member, (*new_artifact)->wire);
    ASSERT_TRUE(run.ok()) << "member " << member << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
  }

  // The other group and the solo device never noticed.
  auto other_run = registry.Dispatch(*other_member, (*other_artifact)->wire);
  ASSERT_TRUE(other_run.ok());
  auto other_epoch = registry.GroupEpoch(other);
  ASSERT_TRUE(other_epoch.ok());
  EXPECT_EQ(*other_epoch, 0u);
  auto solo_context = registry.SealingContextFor(*solo);
  ASSERT_TRUE(solo_context.ok());
  EXPECT_EQ(solo_context->config.epoch, 0u);

  // A device enrolled into the group AFTER the rotation joins at the
  // current epoch and runs the new artifact as-is.
  auto late = registry.Enroll(0x204, group);
  ASSERT_TRUE(late.ok());
  auto late_run = registry.Dispatch(*late, (*new_artifact)->wire);
  ASSERT_TRUE(late_run.ok()) << late_run.status().ToString();
}

TEST(RotationTest, RotateToTargetIsIdempotentAndValidates) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0x301, group).ok());

  EXPECT_EQ(registry.RotateGroupEpoch(kNoGroup).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(registry.RotateGroupEpoch(777).status().code(),
            ErrorCode::kNotFound);

  ASSERT_TRUE(registry.RotateGroupEpochTo(group, 3).ok());
  auto epoch = registry.GroupEpoch(group);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 3u);
  // Replaying the same (or an older) target is a counted no-op.
  auto replay = registry.RotateGroupEpochTo(group, 3);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->rotated);
  EXPECT_EQ(replay->members_rekeyed, 0u);
  EXPECT_EQ(replay->new_epoch, 3u);
  ASSERT_TRUE(registry.RotateGroupEpochTo(group, 1).ok());
  epoch = registry.GroupEpoch(group);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 3u);
}

// Enrollments racing rotations must never strand a device: whichever
// side finishes second re-keys the newcomer, so after the dust settles
// every member runs a package sealed under the group's current context.
TEST(RotationTest, EnrollRacingRotationNeverStrandsAMember) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("contested");
  ASSERT_TRUE(registry.Enroll(0x500, group).ok());

  constexpr int kEnrollers = 3;
  constexpr int kPerThread = 8;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> enrollers;
  for (int t = 0; t < kEnrollers; ++t) {
    enrollers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!registry.Enroll(0x510 + t * kPerThread + i, group).ok()) {
          ++errors;
        }
      }
    });
  }
  std::thread rotator([&] {
    while (!stop.load()) {
      if (!registry.RotateGroupEpoch(group).ok()) ++errors;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& thread : enrollers) thread.join();
  stop.store(true);
  rotator.join();
  ASSERT_EQ(errors.load(), 0);

  // Every member — including any that enrolled mid-rotation — validates
  // a package sealed under the group's final context.
  auto members = registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 1u + kEnrollers * kPerThread);
  PackageCache cache;
  auto context = registry.SealingContextFor(members->front());
  ASSERT_TRUE(context.ok());
  auto artifact = cache.GetOrBuild(kTinyProgram, context->key,
                                   context->config,
                                   core::EncryptionPolicy::Full());
  ASSERT_TRUE(artifact.ok());
  for (DeviceId member : *members) {
    auto run = registry.Dispatch(member, (*artifact)->wire);
    EXPECT_TRUE(run.ok()) << "member " << member << " stranded: "
                          << run.status().ToString();
  }
}

TEST(RotationTest, RotationCampaignInvalidatesTargetedAndRedeploys) {
  DeviceRegistry registry;
  const GroupId rotating = registry.CreateGroup("rotating");
  const GroupId steady = registry.CreateGroup("steady");
  std::vector<DeviceId> all;
  for (uint64_t i = 0; i < 4; ++i) {
    auto a = registry.Enroll(0x401 + i, rotating);
    auto b = registry.Enroll(0x481 + i, steady);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    all.push_back(*a);
    all.push_back(*b);
  }
  PackageCache cache;
  DeploymentEngine engine(registry, cache);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.devices = all;
  campaign.workers = 2;
  auto cold = engine.Run(campaign);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->succeeded, all.size());
  ASSERT_EQ(cold->cache_artifact_misses, 2u);  // one seal per group

  RotationConfig rotation_config;
  rotation_config.group = rotating;
  rotation_config.campaign = campaign;
  rotation_config.campaign.devices.clear();  // redeploy the group only
  rotation_config.rollout.canary_size = 1;   // exercise the wave machinery
  rotation_config.rollout.wave_size = 2;
  RotationCampaign rotation(engine, registry, cache);
  auto report = rotation.Run(rotation_config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->bumped);
  EXPECT_EQ(report->old_epoch, 0u);
  EXPECT_EQ(report->new_epoch, 1u);
  EXPECT_EQ(report->members_rekeyed, 4u);
  EXPECT_EQ(report->artifacts_invalidated, 1u);  // targeted: rotating only
  EXPECT_EQ(report->rollout.outcome, CampaignOutcome::kCompleted);
  EXPECT_EQ(report->rollout.targets, 4u);
  EXPECT_EQ(report->rollout.succeeded, 4u);
  EXPECT_EQ(report->rollout.waves.size(), 3u);  // canary(1) + 2 + 1

  // The steady group's artifact stayed hot: redeploying it is all hits.
  CampaignConfig steady_campaign = campaign;
  steady_campaign.devices.clear();
  steady_campaign.group = steady;
  auto steady_report = engine.Run(steady_campaign);
  ASSERT_TRUE(steady_report.ok());
  EXPECT_EQ(steady_report->succeeded, 4u);
  EXPECT_EQ(steady_report->cache_artifact_misses, 0u);

  // Rotating again goes to epoch 2 and re-seals again.
  auto again = rotation.Run(rotation_config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->new_epoch, 2u);
  EXPECT_EQ(again->rollout.succeeded, 4u);
}

// --- DeploymentEngine ---------------------------------------------------------

struct FleetFixture {
  FleetFixture(size_t member_count, GroupId* group_out) {
    *group_out = registry.CreateGroup("fleet");
    for (uint64_t i = 0; i < member_count; ++i) {
      auto id = registry.Enroll(0xF00 + i, *group_out);
      EXPECT_TRUE(id.ok());
    }
  }
  DeviceRegistry registry;
  PackageCache cache;
};

TEST(DeploymentEngineTest, CleanCampaignSealsOnceAndRunsEverywhere) {
  GroupId group;
  FleetFixture fleet(6, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 3;
  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->targets, 6u);
  EXPECT_EQ(report->succeeded, 6u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->deliveries, 6u);
  EXPECT_EQ(report->retries, 0u);
  for (const auto& outcome : report->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.exit_code, kTinyProgramResult);
    EXPECT_EQ(outcome.attempts, 1u);
  }
  // Encrypt-once: one miss, the rest hits.
  EXPECT_EQ(report->cache_artifact_misses, 1u);
  EXPECT_EQ(report->cache_artifact_hits, 5u);
  EXPECT_EQ(report->cache_compile_misses, 1u);
}

TEST(DeploymentEngineTest, RevokedDevicesAreSkippedNotRetried) {
  GroupId group;
  FleetFixture fleet(4, &group);
  auto members = fleet.registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  ASSERT_TRUE(fleet.registry.Revoke(members->front()).ok());

  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.max_attempts = 5;
  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 3u);
  EXPECT_EQ(report->revoked, 1u);
  for (const auto& outcome : report->outcomes) {
    if (outcome.revoked) {
      // Skipped before any wire work: no deliveries spent on it at all.
      EXPECT_EQ(outcome.attempts, 0u);
      EXPECT_EQ(outcome.last_status.code(), ErrorCode::kFailedPrecondition);
    }
  }
  // Only the three live devices consumed deliveries.
  EXPECT_EQ(report->deliveries, 3u);
}

TEST(DeploymentEngineTest, EmptyCampaignIsAnError) {
  DeviceRegistry registry;
  PackageCache cache;
  DeploymentEngine engine(registry, cache);
  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  EXPECT_EQ(engine.Run(campaign).status().code(), ErrorCode::kInvalidArgument);
}

// Retry behaviour under every channel fault: with a 50 % fault rate and a
// deep retry budget, every device eventually lands a clean delivery, no
// faulted delivery ever executes, and mutating faults show real retries.
class CampaignFaultTest : public ::testing::TestWithParam<net::ChannelFault> {};

TEST_P(CampaignFaultTest, RetriesUntilCleanDelivery) {
  GroupId group;
  FleetFixture fleet(8, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 2;
  campaign.max_attempts = 40;  // p(fail) = 0.5^40 per device
  campaign.channel.fault = GetParam();
  campaign.channel.patch_offset = 40;  // inside the text section
  campaign.fault_rate = 0.5;
  campaign.campaign_seed = 0xFA015 + static_cast<uint64_t>(GetParam());

  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 8u) << net::ChannelFaultName(GetParam());
  for (const auto& outcome : report->outcomes) {
    ASSERT_TRUE(outcome.ok);
    // A faulted delivery must never execute: success always means the
    // signed program ran bit-exact.
    EXPECT_EQ(outcome.exit_code, kTinyProgramResult)
        << net::ChannelFaultName(GetParam()) << ": MISEXECUTION";
  }
  if (GetParam() == net::ChannelFault::kNone) {
    EXPECT_EQ(report->retries, 0u);
  } else {
    // 8 devices at 50 % first-attempt fault rate: retries are all but
    // certain (p(none) = 0.5^8), and every retry stems from a rejection.
    EXPECT_GT(report->retries, 0u) << net::ChannelFaultName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, CampaignFaultTest,
    ::testing::Values(net::ChannelFault::kNone,
                      net::ChannelFault::kRandomBitFlips,
                      net::ChannelFault::kBytePatch,
                      net::ChannelFault::kTruncate,
                      net::ChannelFault::kInstructionPatch,
                      net::ChannelFault::kDuplicate),
    [](const ::testing::TestParamInfo<net::ChannelFault>& info) {
      std::string name(net::ChannelFaultName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- CampaignScheduler --------------------------------------------------------

TEST(CampaignSchedulerTest, RollingWavesPartitionAndCompleteExactlyOnce) {
  GroupId group;
  FleetFixture fleet(10, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 2;

  SchedulerConfig policy;
  policy.canary_size = 3;
  policy.canary_failure_threshold = 0.0;
  policy.wave_size = 4;  // waves: canary 3, then 4 + 3

  auto report = scheduler.Run(campaign, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, CampaignOutcome::kCompleted);
  ASSERT_EQ(report->waves.size(), 3u);
  EXPECT_TRUE(report->waves[0].canary);
  EXPECT_EQ(report->waves[0].report.targets, 3u);
  EXPECT_FALSE(report->waves[1].canary);
  EXPECT_EQ(report->waves[1].report.targets, 4u);
  EXPECT_EQ(report->waves[2].report.targets, 3u);
  EXPECT_EQ(report->waves[1].first_target, 3u);
  EXPECT_EQ(report->waves[2].first_target, 7u);

  // Exactly once: every target delivered, no duplicate dispatch anywhere.
  EXPECT_EQ(report->targets, 10u);
  EXPECT_EQ(report->succeeded, 10u);
  EXPECT_EQ(report->never_dispatched, 0u);
  EXPECT_EQ(report->deliveries, 10u);
  // Encrypt-once survives wave slicing: the cache sealed a single time.
  uint64_t misses = 0;
  for (const auto& wave : report->waves) {
    misses += wave.report.cache_artifact_misses;
  }
  EXPECT_EQ(misses, 1u);
}

// The acceptance scenario: a 1000-device campaign whose fault rate is
// far beyond the canary threshold dies after the canary wave, and the
// 980 non-canary devices never see a single delivery.
TEST(CampaignSchedulerTest, BadCanaryAbortsThousandDeviceCampaign) {
  GroupId group;
  FleetFixture fleet(1000, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 4;
  campaign.max_attempts = 1;
  campaign.channel.fault = net::ChannelFault::kTruncate;
  campaign.fault_rate = 1.0;  // every delivery is corrupted

  SchedulerConfig policy;
  policy.canary_size = 20;
  policy.canary_failure_threshold = 0.25;
  policy.wave_size = 100;

  auto report = scheduler.Run(campaign, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, CampaignOutcome::kAbortedByGate);
  ASSERT_EQ(report->waves.size(), 1u);
  EXPECT_TRUE(report->waves[0].canary);
  EXPECT_TRUE(report->waves[0].gate_breached);
  EXPECT_DOUBLE_EQ(report->waves[0].failure_rate, 1.0);
  // No corrupted image ever executed, and the fleet was protected.
  EXPECT_EQ(report->succeeded, 0u);
  EXPECT_EQ(report->failed, 20u);
  EXPECT_EQ(report->deliveries, 20u);
  EXPECT_EQ(report->never_dispatched, 980u);
}

TEST(CampaignSchedulerTest, HealthyCanaryPromotesThroughGate) {
  GroupId group;
  FleetFixture fleet(12, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 2;
  campaign.max_attempts = 20;
  campaign.channel.fault = net::ChannelFault::kRandomBitFlips;
  campaign.fault_rate = 0.3;  // noisy but survivable with retries

  SchedulerConfig policy;
  policy.canary_size = 4;
  policy.canary_failure_threshold = 0.25;
  policy.wave_size = 8;
  policy.wave_failure_threshold = 0.25;

  auto report = scheduler.Run(campaign, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, CampaignOutcome::kCompleted);
  EXPECT_EQ(report->succeeded, 12u);
  EXPECT_EQ(report->never_dispatched, 0u);
}

TEST(CampaignSchedulerTest, PauseResumeDeliversEveryTargetExactlyOnce) {
  GroupId group;
  FleetFixture fleet(24, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 3;
  campaign.delivery_latency_us = 2000;  // stretch the campaign out

  SchedulerConfig policy;
  policy.wave_size = 8;
  policy.canary_size = 4;
  policy.canary_failure_threshold = 0.0;
  // Rate-limit the dispatch so some workers are parked inside the token
  // bucket when Pause() lands — a pause must freeze those too, not just
  // workers at the AwaitRunnable boundary.
  policy.limits.dispatch_rate = 400.0;
  policy.limits.dispatch_burst = 1.0;

  CampaignControl control;
  Result<ScheduledReport> report = Status(ErrorCode::kInternal, "unset");
  std::thread runner([&] { report = scheduler.Run(campaign, policy, &control); });

  // Pause mid-campaign, then wait until the checkpoint stabilizes (an
  // already-admitted delivery may still drain on a loaded host — poll
  // rather than trust a fixed sleep) and verify it stays frozen.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  control.Pause();
  auto frozen = control.progress();
  for (int i = 0; i < 200; ++i) {  // up to 2 s for in-flight drain
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto next = control.progress();
    if (next.deliveries == frozen.deliveries &&
        next.targets_completed == frozen.targets_completed) {
      break;
    }
    frozen = next;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const auto still_frozen = control.progress();
  EXPECT_EQ(frozen.deliveries, still_frozen.deliveries);
  EXPECT_EQ(frozen.targets_completed, still_frozen.targets_completed);
  EXPECT_LT(still_frozen.deliveries, 24u);  // it really was mid-flight

  control.Resume();
  runner.join();

  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, CampaignOutcome::kCompleted);
  EXPECT_EQ(report->succeeded, 24u);
  // Exactly once: 24 deliveries for 24 targets, nothing skipped and
  // nothing double-dispatched across the pause boundary.
  EXPECT_EQ(report->deliveries, 24u);
  EXPECT_EQ(report->never_dispatched, 0u);
  const auto final_progress = control.progress();
  EXPECT_EQ(final_progress.targets_completed, 24u);
  EXPECT_EQ(final_progress.waves_completed, 4u);  // 4 + 8 + 8 + 4
}

TEST(CampaignSchedulerTest, TokenBucketRateLimitIsHonored) {
  GroupId group;
  FleetFixture fleet(8, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 4;

  SchedulerConfig policy;
  policy.limits.dispatch_rate = 100.0;  // 100 deliveries/s, burst 1
  policy.limits.dispatch_burst = 1.0;

  auto report = scheduler.Run(campaign, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 8u);
  EXPECT_EQ(report->deliveries, 8u);
  // 8 deliveries at 100/s from a 1-token bucket need >= 70 ms of refill.
  // Allow scheduling slack below the theoretical floor but reject a
  // campaign that clearly ignored the limiter.
  EXPECT_GE(report->wall_ms, 60.0);
}

TEST(CampaignSchedulerTest, GroupConcurrencyBudgetCapsInFlight) {
  DeviceRegistry registry;
  PackageCache cache;
  const GroupId group_a = registry.CreateGroup("a");
  const GroupId group_b = registry.CreateGroup("b");
  std::vector<DeviceId> targets;
  for (uint64_t i = 0; i < 12; ++i) {
    auto id = registry.Enroll(0xAB00 + i, i % 2 == 0 ? group_a : group_b);
    ASSERT_TRUE(id.ok());
    targets.push_back(*id);
  }
  DeploymentEngine engine(registry, cache);
  CampaignScheduler scheduler(engine, registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.devices = targets;
  campaign.workers = 6;
  campaign.delivery_latency_us = 1000;

  SchedulerConfig policy;
  policy.limits.group_concurrency = 1;

  auto report = scheduler.Run(campaign, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 12u);
  // Two groups at one in-flight delivery each: the peak can never exceed
  // 2 no matter how many workers raced.
  EXPECT_GT(report->peak_in_flight, 0u);
  EXPECT_LE(report->peak_in_flight, 2u);
}

TEST(DispatchGovernorTest, PauseAndCancelWakeBudgetParkedWorkers) {
  // Regression: Pause()/Cancel() only notified AwaitRunnable's own cv,
  // never the governor's group-budget cv — a worker parked on a full
  // group-concurrency budget slept through the transition until some
  // unrelated delivery released a slot. With every slot held and the
  // campaign cancelled, that worker hung forever.
  CampaignControl control;
  DispatchGovernor::Limits limits;
  limits.group_concurrency = 1;
  DispatchGovernor governor(limits, &control);

  const GroupId group = 5;
  ASSERT_TRUE(governor.AdmitDelivery(group));  // hold the only slot

  std::atomic<bool> returned{false};
  bool admitted = true;
  std::thread waiter([&] {
    admitted = governor.AdmitDelivery(group);  // parks on the full budget
    returned.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load(std::memory_order_acquire));

  // Pause reaches the parked waiter (it re-parks on AwaitRunnable), and
  // the cancel must then unwind it promptly — the held slot is never
  // released, so only the notification path can wake it.
  control.Pause();
  control.Cancel();
  const auto start = std::chrono::steady_clock::now();
  waiter.join();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(admitted);
  EXPECT_LT(waited, std::chrono::seconds(2));
  governor.CompleteDelivery(group);
}

TEST(CampaignSchedulerTest, CancelSkipsRemainingWaves) {
  GroupId group;
  FleetFixture fleet(9, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;

  SchedulerConfig policy;
  policy.wave_size = 3;

  CampaignControl control;
  control.Cancel();  // cancelled before the first wave launches
  auto report = scheduler.Run(campaign, policy, &control);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, CampaignOutcome::kCancelled);
  EXPECT_EQ(report->succeeded, 0u);
  EXPECT_EQ(report->deliveries, 0u);
  EXPECT_EQ(report->never_dispatched, 9u);
  EXPECT_TRUE(report->waves.empty());
}

TEST(CampaignSchedulerTest, ShuffledCanarySamplesDeterministically) {
  GroupId group;
  FleetFixture fleet(16, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignScheduler scheduler(engine, fleet.registry);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.campaign_seed = 0x5EED;

  SchedulerConfig policy;
  policy.canary_size = 4;
  policy.shuffle_targets = true;

  auto first = scheduler.Run(campaign, policy);
  auto second = scheduler.Run(campaign, policy);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->succeeded, 16u);
  // Same seed, same cohort: the shuffle is reproducible.
  ASSERT_EQ(first->waves[0].report.outcomes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first->waves[0].report.outcomes[i].device,
              second->waves[0].report.outcomes[i].device);
  }
}

// --- Delta deployment ---------------------------------------------------------

/// A small grouped fleet plus an engine, the fixture every delta test
/// starts from. The release pair is the shared synthetic one (a multi-KB
/// image, versions one loop bound apart), so "small mutation" here means
/// the same bytes the CI-gated bench_delta baseline measures.
struct DeltaFleet {
  DeviceRegistry registry;
  GroupId group;
  std::vector<DeviceId> devices;
  PackageCache cache;
  DeploymentEngine engine{registry, cache};
  std::string v1_source = workloads::MakeSyntheticRelease(3);
  std::string v2_source = workloads::MakeSyntheticRelease(5);

  explicit DeltaFleet(size_t count = 6) {
    group = registry.CreateGroup("delta");
    for (size_t i = 0; i < count; ++i) {
      auto id = registry.Enroll(0xDE17A000 + i, group);
      EXPECT_TRUE(id.ok());
      devices.push_back(*id);
    }
  }

  CampaignConfig V1Campaign() const {
    CampaignConfig config;
    config.source = v1_source;
    config.devices = devices;
    config.workers = 2;
    return config;
  }

  CampaignConfig V2DeltaCampaign() const {
    CampaignConfig config = V1Campaign();
    config.source = v2_source;
    config.delta = true;
    config.delta_base_source = v1_source;
    return config;
  }
};

TEST(DeltaCampaignTest, ShipsDeltasToCurrentDevicesAndAdvancesManifests) {
  DeltaFleet fleet;
  const CampaignConfig v1 = fleet.V1Campaign();
  auto first = fleet.engine.Run(v1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->succeeded, fleet.devices.size());
  EXPECT_EQ(first->delta_deliveries, 0u);
  EXPECT_EQ(first->full_deliveries, fleet.devices.size());
  EXPECT_EQ(first->bytes_shipped, first->bytes_full_equivalent);

  // Every success left a manifest at v1 under the group key.
  const uint64_t v1_version = ProgramVersionFingerprint(
      fleet.v1_source, v1.policy, v1.compile_options);
  const crypto::Sha256Digest key_fp =
      FingerprintKey(*fleet.registry.GroupKey(fleet.group));
  for (DeviceId id : fleet.devices) {
    auto manifest = fleet.registry.DeliveredVersion(id);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->version, v1_version);
    EXPECT_EQ(manifest->key_fingerprint, key_fp);
  }

  const CampaignConfig v2 = fleet.V2DeltaCampaign();
  auto second = fleet.engine.Run(v2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->succeeded, fleet.devices.size());
  EXPECT_EQ(second->delta_deliveries, fleet.devices.size());
  EXPECT_EQ(second->full_deliveries, 0u);
  EXPECT_EQ(second->delta_fallbacks, 0u);
  // The whole point: a one-constant change must not re-ship the image.
  EXPECT_LT(second->bytes_shipped, second->bytes_full_equivalent / 2);
  const uint64_t v2_version = ProgramVersionFingerprint(
      fleet.v2_source, v2.policy, v2.compile_options);
  for (const auto& outcome : second->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.delta);
    auto manifest = fleet.registry.DeliveredVersion(outcome.device);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->version, v2_version);
  }
}

TEST(DeltaCampaignTest, FreshDevicesWithoutManifestsGetFullPackages) {
  DeltaFleet fleet(4);
  auto report = fleet.engine.Run(fleet.V2DeltaCampaign());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 4u);
  EXPECT_EQ(report->delta_deliveries, 0u);
  EXPECT_EQ(report->full_deliveries, 4u);
  EXPECT_EQ(report->delta_fallbacks, 0u);
  for (const auto& outcome : report->outcomes) EXPECT_FALSE(outcome.delta);
}

TEST(DeltaCampaignTest, DeltaCampaignWithoutBaseSourceIsRefused) {
  DeltaFleet fleet(1);
  CampaignConfig config = fleet.V2DeltaCampaign();
  config.delta_base_source.clear();
  EXPECT_EQ(fleet.engine.Run(config).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(DeltaCampaignTest, SizeFractionForcesFullPackages) {
  DeltaFleet fleet(3);
  ASSERT_TRUE(fleet.engine.Run(fleet.V1Campaign()).ok());
  CampaignConfig v2 = fleet.V2DeltaCampaign();
  v2.delta_max_fraction = 0.0;  // no delta is ever small enough
  auto report = fleet.engine.Run(v2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 3u);
  EXPECT_EQ(report->delta_deliveries, 0u);
  EXPECT_EQ(report->full_deliveries, 3u);
  EXPECT_EQ(report->delta_fallbacks, 0u);  // suppressed, not attempted
}

TEST(DeltaCampaignTest, EpochRotationForcesFullPackagesViaKeyFingerprint) {
  DeltaFleet fleet(4);
  ASSERT_TRUE(fleet.engine.Run(fleet.V1Campaign()).ok());
  // Rotate the group: retained v1 images are sealed under the retired
  // key, so the manifest's key fingerprint no longer matches and a patch
  // must not even be attempted.
  auto rotation = fleet.registry.RotateGroupEpoch(fleet.group);
  ASSERT_TRUE(rotation.ok());
  ASSERT_TRUE(rotation->rotated);
  auto report = fleet.engine.Run(fleet.V2DeltaCampaign());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 4u);
  EXPECT_EQ(report->delta_deliveries, 0u);
  EXPECT_EQ(report->full_deliveries, 4u);
  // The full deliveries re-recorded manifests under the new key: the
  // next update deploys deltas again.
  CampaignConfig v3 = fleet.V2DeltaCampaign();
  v3.source = fleet.v1_source;  // "roll back" release, v2 as base
  v3.delta_base_source = fleet.v2_source;
  auto next = fleet.engine.Run(v3);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->delta_deliveries, 4u);
}

/// Finds (campaign_seed, fault_rate) such that the target's first
/// delivery (the delta) is faulted by the engine's per-delivery draw and
/// the second (the fallback full package) is not. Uses the engine's own
/// DeliverySeed mixing, so the test stays correct if seeds reshuffle.
bool FindFaultWindow(DeviceId device, uint64_t* campaign_seed,
                     double* fault_rate) {
  for (uint64_t seed = 1; seed < 64; ++seed) {
    const double draw0 =
        Xoshiro256(DeliverySeed(seed, device, 0) ^ 0xFA017).NextDouble();
    const double draw1 =
        Xoshiro256(DeliverySeed(seed, device, 1) ^ 0xFA017).NextDouble();
    if (draw0 < draw1 - 0.05) {  // margin against float quirks
      *campaign_seed = seed;
      *fault_rate = (draw0 + draw1) / 2;  // faults #0, spares #1
      return true;
    }
  }
  return false;
}

TEST(DeltaCampaignTest, CorruptedDeltaFailsClosedAndFallsBackToFull) {
  DeltaFleet fleet(1);
  ASSERT_TRUE(fleet.engine.Run(fleet.V1Campaign()).ok());

  CampaignConfig v2 = fleet.V2DeltaCampaign();
  v2.workers = 1;
  v2.max_attempts = 1;  // the fallback is protocol, not a retry
  v2.channel.fault = net::ChannelFault::kBytePatch;
  v2.channel.patch_offset = 24;  // inside the delta's CRC-pinned header
  ASSERT_TRUE(FindFaultWindow(fleet.devices[0], &v2.campaign_seed,
                              &v2.fault_rate));

  // Guard the setup, not just the draw: the patch must actually change
  // delta bytes (a patch writing a byte's existing value would deliver
  // an intact patch and void the scenario). The delta the engine will
  // ship comes from the same shared cache.
  {
    auto sealing = fleet.registry.SealingContextFor(fleet.devices[0]);
    ASSERT_TRUE(sealing.ok());
    auto base = fleet.cache.GetOrBuild(v2.delta_base_source, sealing->key,
                                       sealing->config, v2.policy);
    auto target = fleet.cache.GetOrBuild(v2.source, sealing->key,
                                         sealing->config, v2.policy);
    ASSERT_TRUE(base.ok() && target.ok());
    auto delta = fleet.cache.GetOrBuildDelta(**base, **target);
    ASSERT_TRUE(delta.ok());
    net::Channel probe(v2.channel);
    ASSERT_NE(probe.Deliver((*delta)->wire), (*delta)->wire)
        << "byte patch left the delta intact; move patch_offset";
  }

  auto report = fleet.engine.Run(v2);
  ASSERT_TRUE(report.ok());
  const DeviceOutcome& outcome = report->outcomes[0];
  // The corrupted patch was rejected without executing anything, and the
  // same admission re-shipped the full package successfully.
  EXPECT_TRUE(outcome.ok) << outcome.last_status.ToString();
  EXPECT_TRUE(outcome.delta_fallback);
  EXPECT_FALSE(outcome.delta);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(report->delta_fallbacks, 1u);
  EXPECT_EQ(report->delta_deliveries, 1u);
  EXPECT_EQ(report->full_deliveries, 1u);
  // The counterfactual counts the attempt's full size once: a fallback
  // target honestly costs MORE wire than never attempting the delta.
  EXPECT_GT(report->bytes_shipped, report->bytes_full_equivalent);
}

TEST(DeltaCampaignTest, WrongRetainedBaseFallsBackToFull) {
  DeltaFleet fleet(2);
  ASSERT_TRUE(fleet.engine.Run(fleet.V1Campaign()).ok());

  // Behind the engine's back, hand one device the v2 image directly: its
  // retained base is now v2 while its manifest still says v1 — exactly
  // the state a crash between dispatch and manifest append leaves.
  auto sealing = fleet.registry.SealingContextFor(fleet.devices[0]);
  ASSERT_TRUE(sealing.ok());
  auto v2_artifact = fleet.cache.GetOrBuild(
      fleet.v2_source, sealing->key, sealing->config,
      core::EncryptionPolicy::Full());
  ASSERT_TRUE(v2_artifact.ok());
  ASSERT_TRUE(
      fleet.registry.Dispatch(fleet.devices[0], (*v2_artifact)->wire).ok());

  auto report = fleet.engine.Run(fleet.V2DeltaCampaign());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 2u);
  EXPECT_EQ(report->delta_fallbacks, 1u);  // the tampered device only
  size_t fallbacks = 0, deltas = 0;
  for (const auto& outcome : report->outcomes) {
    EXPECT_TRUE(outcome.ok);
    if (outcome.delta_fallback) ++fallbacks;
    if (outcome.delta) ++deltas;
  }
  EXPECT_EQ(fallbacks, 1u);
  EXPECT_EQ(deltas, 1u);  // the untouched device still got its patch
}

TEST(PackageCacheDeltaTest, DeltaEntriesCacheAndRotationInvalidates) {
  DeltaFleet fleet(1);
  auto sealing = fleet.registry.SealingContextFor(fleet.devices[0]);
  ASSERT_TRUE(sealing.ok());
  const core::EncryptionPolicy policy = core::EncryptionPolicy::Full();
  auto v1 = fleet.cache.GetOrBuild(fleet.v1_source, sealing->key,
                                   sealing->config, policy);
  auto v2 = fleet.cache.GetOrBuild(fleet.v2_source, sealing->key,
                                   sealing->config, policy);
  ASSERT_TRUE(v1.ok() && v2.ok());

  PackageCacheStats first_stats;
  auto first = fleet.cache.GetOrBuildDelta(**v1, **v2, &first_stats);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first_stats.delta_misses, 1u);
  PackageCacheStats second_stats;
  auto second = fleet.cache.GetOrBuildDelta(**v1, **v2, &second_stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second_stats.delta_hits, 1u);
  EXPECT_EQ(second->get(), first->get());  // the cached entry itself

  // The delta patches v1's wire into v2's wire exactly.
  auto applied = pkg::ApplyDelta((*v1)->wire, (*first)->wire);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, (*v2)->wire);

  // Rotation invalidation drops the retired key's deltas too.
  EXPECT_GT(fleet.cache.InvalidateKeyFingerprint((*v2)->key_fingerprint), 0u);
  PackageCacheStats third_stats;
  ASSERT_TRUE(fleet.cache.GetOrBuildDelta(**v1, **v2, &third_stats).ok());
  EXPECT_EQ(third_stats.delta_misses, 1u);

  // Endpoints sealed under different keys cannot be delta'd.
  auto solo = fleet.registry.Enroll(0x5010);
  ASSERT_TRUE(solo.ok());
  auto solo_key = fleet.registry.DeploymentKey(*solo);
  auto other = fleet.cache.GetOrBuild(fleet.v2_source, *solo_key,
                                      fleet.registry.key_config(), policy);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(fleet.cache.GetOrBuildDelta(**v1, **other).status().code(),
            ErrorCode::kInvalidArgument);
}

// --- Update agent through the fleet layer -------------------------------------

namespace fs = std::filesystem;

std::string MakeAgentTempDir(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("eric-fleet-agent-" + std::string(tag) + "-" +
                        std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The PR 5 gap, closed: delta bases live in the durable slot manifest,
// so a daemon restart between the full-package campaign and the delta
// campaign must not cost a single device its patch. This is the
// regression test for "retained images are in-memory only".
TEST(AgentFleetTest, DeltaBasesSurviveDaemonRestart) {
  const std::string dir = MakeAgentTempDir("restart-delta");
  const std::string v1 = workloads::MakeSyntheticRelease(3);
  const std::string v2 = workloads::MakeSyntheticRelease(5);
  std::vector<DeviceId> devices;
  GroupId group = kNoGroup;

  {
    DeviceRegistry registry;
    ASSERT_TRUE(registry.OpenStorage(dir).ok());
    group = registry.CreateGroup("restart-delta");
    for (uint64_t i = 0; i < 6; ++i) {
      auto id = registry.Enroll(0x4E57A000 + i, group);
      ASSERT_TRUE(id.ok());
      devices.push_back(*id);
    }
    PackageCache cache;
    DeploymentEngine engine(registry, cache);
    CampaignConfig first;
    first.source = v1;
    first.devices = devices;
    first.workers = 2;
    auto report = engine.Run(first);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->succeeded, devices.size());
  }  // daemon dies mid-fleet: every device holds v1 in its active slot

  DeviceRegistry recovered;
  ASSERT_TRUE(recovered.OpenStorage(dir).ok());
  // The recovered agents report the applied image, not a blank slate.
  for (DeviceId id : devices) {
    auto inspection = recovered.InspectAgent(id);
    ASSERT_TRUE(inspection.ok());
    EXPECT_GE(inspection->state.active_slot, 0);
    EXPECT_TRUE(inspection->active_crc_valid);
    EXPECT_EQ(inspection->state.counters.applies, 1u);
  }

  PackageCache cache;
  DeploymentEngine engine(recovered, cache);
  CampaignConfig second;
  second.source = v2;
  second.delta = true;
  second.delta_base_source = v1;
  second.devices = devices;
  second.workers = 2;
  auto report = engine.Run(second);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, devices.size());
  // Every device patches against its recovered base: real deltas, zero
  // fallbacks, and the wire win survives the restart.
  EXPECT_EQ(report->delta_deliveries, devices.size());
  EXPECT_EQ(report->full_deliveries, 0u);
  EXPECT_EQ(report->delta_fallbacks, 0u);
  const double ratio = static_cast<double>(report->bytes_shipped) /
                       static_cast<double>(report->bytes_full_equivalent);
  EXPECT_LE(ratio, 0.35) << "restarted fleet lost its delta win";
}

// A crash-interrupted apply surfaces as a retryable failure; the next
// delivery recovers the agent (rollback) and lands the update. The
// engine's report carries the rollback so operators see the chaos.
TEST(AgentFleetTest, CrashMidApplyRecoversOnRetry) {
  DeltaFleet fleet(1);
  ASSERT_TRUE(
      fleet.registry
          .ArmAgentCrash(fleet.devices[0], agent::CrashPoint::kAfterFlip)
          .ok());
  CampaignConfig config = fleet.V1Campaign();
  config.workers = 1;
  config.max_attempts = 2;
  auto report = fleet.engine.Run(config);
  ASSERT_TRUE(report.ok());
  const DeviceOutcome& outcome = report->outcomes[0];
  EXPECT_TRUE(outcome.ok) << outcome.last_status.ToString();
  EXPECT_EQ(outcome.attempts, 2u);  // crash burned one delivery
  EXPECT_TRUE(outcome.rolled_back);
  EXPECT_EQ(report->rollbacks, 1u);
  auto inspection = fleet.registry.InspectAgent(fleet.devices[0]);
  ASSERT_TRUE(inspection.ok());
  EXPECT_EQ(inspection->state.counters.crash_recoveries, 1u);
  EXPECT_EQ(inspection->state.counters.rollbacks, 1u);
  EXPECT_TRUE(inspection->active_crc_valid);
  EXPECT_TRUE(fleet.registry.RunActiveSlot(fleet.devices[0]).ok());
}

// Health-check failures on the delta path are vetoes, not wire faults:
// the fallback full package ships inside the SAME retry admission, so a
// max_attempts=1 campaign still recovers the device. The channel is
// genuinely faulty here — the seed search pins a window where both the
// delta and its fallback dodge the fault draw, proving the budget rule
// (and not a quiet channel) is what saved the target.
TEST(AgentFleetTest, HealthFailureOnDeltaDoesNotConsumeRetryBudget) {
  DeltaFleet fleet(1);
  ASSERT_TRUE(fleet.engine.Run(fleet.V1Campaign()).ok());

  CampaignConfig v2 = fleet.V2DeltaCampaign();
  v2.workers = 1;
  v2.max_attempts = 1;  // the fallback is protocol, not a retry
  v2.channel.fault = net::ChannelFault::kRandomBitFlips;

  // Seed-search the engine's own per-delivery draws for a window where
  // deliveries #0 (delta) and #1 (fallback full) both stay clean under a
  // nonzero fault rate.
  bool found = false;
  for (uint64_t seed = 1; seed < 256 && !found; ++seed) {
    const double draw0 =
        Xoshiro256(DeliverySeed(seed, fleet.devices[0], 0) ^ 0xFA017)
            .NextDouble();
    const double draw1 =
        Xoshiro256(DeliverySeed(seed, fleet.devices[0], 1) ^ 0xFA017)
            .NextDouble();
    if (draw0 > 0.3 && draw1 > 0.3) {
      v2.campaign_seed = seed;
      v2.fault_rate = 0.25;  // below both draws: neither delivery faults
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no clean fault window in 256 seeds";

  // The device boots the patched v2 image and fails self-test once.
  ASSERT_TRUE(fleet.registry.ArmAgentHealthFailures(fleet.devices[0], 1).ok());

  auto report = fleet.engine.Run(v2);
  ASSERT_TRUE(report.ok());
  const DeviceOutcome& outcome = report->outcomes[0];
  // Two deliveries on a one-attempt budget: the veto consumed none of it.
  EXPECT_TRUE(outcome.ok) << outcome.last_status.ToString();
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_TRUE(outcome.delta_fallback);
  EXPECT_TRUE(outcome.health_failed);
  EXPECT_TRUE(outcome.rolled_back);
  EXPECT_FALSE(outcome.delta);  // the full package is what stuck
  EXPECT_EQ(report->delta_fallbacks, 1u);
  EXPECT_EQ(report->health_failures, 1u);
  EXPECT_EQ(report->rollbacks, 1u);
  // `retries` counts wire deliveries beyond the first (the fallback IS a
  // second delivery); the budget proof is attempts==2 under max_attempts=1.
  EXPECT_EQ(report->retries, 1u);

  // The rollback and the fallback both held: the device runs v2 now.
  auto inspection = fleet.registry.InspectAgent(fleet.devices[0]);
  ASSERT_TRUE(inspection.ok());
  EXPECT_EQ(inspection->state.counters.health_failures, 1u);
  EXPECT_EQ(inspection->state.counters.rollbacks, 1u);
  EXPECT_TRUE(fleet.registry.RunActiveSlot(fleet.devices[0]).ok());
}

// An UNPATCHABLE device (no durable base: memory-only registry never
// applied anything) plus an armed health failure must not double-charge:
// the full-package path's health veto consumes the normal retry budget —
// only the DELTA fallback path gets the free second delivery.
TEST(AgentFleetTest, HealthFailureOnFullPathConsumesBudgetAsRetry) {
  DeltaFleet fleet(1);
  ASSERT_TRUE(fleet.registry.ArmAgentHealthFailures(fleet.devices[0], 1).ok());
  CampaignConfig config = fleet.V1Campaign();
  config.workers = 1;
  config.max_attempts = 1;
  auto report = fleet.engine.Run(config);
  ASSERT_TRUE(report.ok());
  const DeviceOutcome& outcome = report->outcomes[0];
  // One attempt, vetoed: the target fails (and would need a retry).
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_TRUE(outcome.health_failed);
  EXPECT_FALSE(outcome.delta_fallback);
  EXPECT_EQ(report->failed, 1u);

  // With a second attempt in the budget, the retry lands it.
  ASSERT_TRUE(fleet.registry.ArmAgentHealthFailures(fleet.devices[0], 1).ok());
  config.max_attempts = 2;
  auto retried = fleet.engine.Run(config);
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->outcomes[0].ok);
  EXPECT_EQ(retried->outcomes[0].attempts, 2u);
}

// --- Heterogeneous fleets (per-device ISA) ----------------------------------

TEST(DeviceRegistryTest, EnrollmentRecordsDeviceIsa) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("mixed");
  auto rv64 = registry.Enroll(0x15A64, group);
  auto rv32 = registry.Enroll(0x15A32, group, isa::IsaId::kRv32I);
  ASSERT_TRUE(rv64.ok());
  ASSERT_TRUE(rv32.ok());
  auto info64 = registry.Lookup(*rv64);
  auto info32 = registry.Lookup(*rv32);
  ASSERT_TRUE(info64.ok());
  ASSERT_TRUE(info32.ok());
  EXPECT_EQ(info64->isa, isa::IsaId::kRv64Gc);  // the default
  EXPECT_EQ(info32->isa, isa::IsaId::kRv32I);
}

TEST(PackageCacheTest, IsaIsPartOfTheArtifactAddress) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0xCA, group).ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  const auto policy = core::EncryptionPolicy::Full();

  PackageCache cache;
  compiler::CompileOptions rv64_options;
  compiler::CompileOptions rv32_options;
  rv32_options.isa = isa::IsaId::kRv32I;
  auto rv64_artifact = cache.GetOrBuild(kTinyProgram, *key,
                                        registry.key_config(), policy,
                                        core::CipherKind::kXor, rv64_options);
  auto rv32_artifact = cache.GetOrBuild(kTinyProgram, *key,
                                        registry.key_config(), policy,
                                        core::CipherKind::kXor, rv32_options);
  ASSERT_TRUE(rv64_artifact.ok());
  ASSERT_TRUE(rv32_artifact.ok());
  // Same source, same key, same policy — but different silicon, so the
  // cache must hold two distinct artifacts and never serve one for the
  // other.
  EXPECT_NE(rv64_artifact->get(), rv32_artifact->get());
  EXPECT_NE((*rv64_artifact)->wire, (*rv32_artifact)->wire);
  EXPECT_EQ((*rv64_artifact)->isa, isa::IsaId::kRv64Gc);
  EXPECT_EQ((*rv32_artifact)->isa, isa::IsaId::kRv32I);
  EXPECT_EQ(cache.Stats().artifact_misses, 2u);
  EXPECT_EQ(cache.Stats().compile_misses, 2u);

  // Repeating either request hits its own ISA's entry.
  auto again = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                policy, core::CipherKind::kXor, rv32_options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), rv32_artifact->get());
  EXPECT_EQ(cache.Stats().artifact_hits, 1u);
}

TEST(PackageCacheTest, RefusesCrossIsaDeltaEndpoints) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0xCB, group).ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  const auto policy = core::EncryptionPolicy::Full();

  PackageCache cache;
  compiler::CompileOptions rv32_options;
  rv32_options.isa = isa::IsaId::kRv32I;
  auto base = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                               policy);
  auto target = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                 policy, core::CipherKind::kXor, rv32_options);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(target.ok());
  // A delta between differently-encoded images is never valid: refuse at
  // the cache boundary rather than ship a patch that can only corrupt.
  auto delta = cache.GetOrBuildDelta(**base, **target);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DeploymentEngineTest, MixedIsaCampaignCompilesPerIsaAndRunsEverywhere) {
  DeviceRegistry registry;
  PackageCache cache;
  const GroupId group = registry.CreateGroup("mixed");
  std::vector<DeviceId> rv64_devices;
  std::vector<DeviceId> rv32_devices;
  for (uint64_t i = 0; i < 4; ++i) {
    auto id = registry.Enroll(0xA64000 + i, group);
    ASSERT_TRUE(id.ok());
    rv64_devices.push_back(*id);
  }
  for (uint64_t i = 0; i < 2; ++i) {
    auto id = registry.Enroll(0xA32000 + i, group, isa::IsaId::kRv32I);
    ASSERT_TRUE(id.ok());
    rv32_devices.push_back(*id);
  }

  DeploymentEngine engine(registry, cache);
  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 3;
  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->targets, 6u);
  EXPECT_EQ(report->succeeded, 6u);
  EXPECT_EQ(report->failed, 0u);
  // The workload is 32-bit clean, so every device — either ISA — computes
  // the same answer from its own ISA's image.
  for (const auto& outcome : report->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.exit_code, kTinyProgramResult);
    auto info = registry.Lookup(outcome.device);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(outcome.isa, info->isa);
  }
  // Encrypt-once still holds per ISA: one compile and one seal each.
  const auto& rv64_stats =
      report->by_isa[static_cast<size_t>(isa::IsaId::kRv64Gc)];
  const auto& rv32_stats =
      report->by_isa[static_cast<size_t>(isa::IsaId::kRv32I)];
  EXPECT_EQ(rv64_stats.targets, 4u);
  EXPECT_EQ(rv64_stats.succeeded, 4u);
  EXPECT_EQ(rv64_stats.compile_builds, 1u);
  EXPECT_EQ(rv64_stats.seal_builds, 1u);
  EXPECT_EQ(rv32_stats.targets, 2u);
  EXPECT_EQ(rv32_stats.succeeded, 2u);
  EXPECT_EQ(rv32_stats.compile_builds, 1u);
  EXPECT_EQ(rv32_stats.seal_builds, 1u);
  EXPECT_EQ(report->cache_compile_misses, 2u);
  EXPECT_EQ(report->cache_artifact_misses, 2u);
  EXPECT_EQ(report->cache_artifact_hits, 4u);
  // Each manifest records the ISA of the image that actually landed.
  for (DeviceId id : rv32_devices) {
    auto manifest = registry.DeliveredVersion(id);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->isa, isa::IsaId::kRv32I);
  }
  for (DeviceId id : rv64_devices) {
    auto manifest = registry.DeliveredVersion(id);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->isa, isa::IsaId::kRv64Gc);
  }
}

TEST(DeltaCampaignTest, PerIsaDeltasInAMixedFleet) {
  DeltaFleet fleet;
  auto rv32 = fleet.registry.Enroll(0xDE17A320, fleet.group,
                                    isa::IsaId::kRv32I);
  ASSERT_TRUE(rv32.ok());
  fleet.devices.push_back(*rv32);

  auto first = fleet.engine.Run(fleet.V1Campaign());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->succeeded, fleet.devices.size());

  // The rv32 device's retained base is rv32-encoded and its manifest says
  // so, so the v2 delta campaign can diff within that ISA: everyone gets
  // a delta, each encoded against their own ISA's base image.
  auto second = fleet.engine.Run(fleet.V2DeltaCampaign());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->succeeded, fleet.devices.size());
  EXPECT_EQ(second->delta_deliveries, fleet.devices.size());
  EXPECT_EQ(second->full_deliveries, 0u);
  EXPECT_EQ(second->delta_fallbacks, 0u);
  for (const auto& outcome : second->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.delta);
  }
}

TEST(DeltaCampaignTest, CrossIsaManifestBaseFallsBackToFullDelivery) {
  DeltaFleet fleet;
  auto rv32 = fleet.registry.Enroll(0xDE17A321, fleet.group,
                                    isa::IsaId::kRv32I);
  ASSERT_TRUE(rv32.ok());
  fleet.devices.push_back(*rv32);

  const CampaignConfig v1 = fleet.V1Campaign();
  auto first = fleet.engine.Run(v1);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->succeeded, fleet.devices.size());

  // Rewrite the rv32 device's manifest to claim its retained image is
  // rv64-encoded (a control plane that predates per-device ISAs would
  // have recorded exactly this). Version and key fingerprint still
  // match, so only the ISA check stands between this device and a
  // corrupting patch.
  const uint64_t v1_version =
      ProgramVersionFingerprint(fleet.v1_source, v1.policy,
                                v1.compile_options);
  const crypto::Sha256Digest key_fp =
      FingerprintKey(*fleet.registry.GroupKey(fleet.group));
  ASSERT_TRUE(fleet.registry
                  .RecordDelivery(*rv32, v1_version, key_fp,
                                  isa::IsaId::kRv64Gc)
                  .ok());

  auto second = fleet.engine.Run(fleet.V2DeltaCampaign());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->succeeded, fleet.devices.size());
  // The mismatched device silently gets a full package on the first
  // attempt — fail-closed, not a fallback after a failed delta, so no
  // retry budget is consumed.
  EXPECT_EQ(second->full_deliveries, 1u);
  EXPECT_EQ(second->delta_deliveries, fleet.devices.size() - 1);
  EXPECT_EQ(second->delta_fallbacks, 0u);
  for (const auto& outcome : second->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 1u);
    if (outcome.device == *rv32) {
      EXPECT_FALSE(outcome.delta);
      EXPECT_FALSE(outcome.delta_fallback);
    } else {
      EXPECT_TRUE(outcome.delta);
    }
  }
  // After the full delivery the manifest is honest again: rv32-encoded.
  auto manifest = fleet.registry.DeliveredVersion(*rv32);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->isa, isa::IsaId::kRv32I);
}

}  // namespace
}  // namespace eric::fleet
