// Fleet subsystem tests: sharded registry under concurrency, encrypt-once
// cache correctness (a cached artifact is exactly as device-bound as a
// freshly sealed one), and campaign retry behaviour under every channel
// fault.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "fleet/deployment_engine.h"
#include "net/channel.h"

namespace eric::fleet {
namespace {

// sum of i*i for i in 1..10
constexpr int64_t kTinyProgramResult = 385;
constexpr const char* kTinyProgram = R"(
  fn main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) { sum = sum + i * i; i = i + 1; }
    return sum;
  }
)";

// --- DeviceRegistry -----------------------------------------------------------

TEST(DeviceRegistryTest, EnrollLookupRoundTrip) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto id = registry.Enroll(0xD0, group);
  ASSERT_TRUE(id.ok());

  auto info = registry.Lookup(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, *id);
  EXPECT_EQ(info->device_seed, 0xD0u);
  EXPECT_EQ(info->group, group);
  EXPECT_EQ(info->status, DeviceStatus::kEnrolled);

  EXPECT_EQ(registry.Lookup(9999).status().code(), ErrorCode::kNotFound);
}

TEST(DeviceRegistryTest, GroupedDeviceDeploysWithGroupKey) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  auto id = registry.Enroll(0xD1, group);
  ASSERT_TRUE(id.ok());
  auto group_key = registry.GroupKey(group);
  auto deploy_key = registry.DeploymentKey(*id);
  ASSERT_TRUE(group_key.ok());
  ASSERT_TRUE(deploy_key.ok());
  EXPECT_EQ(*group_key, *deploy_key);

  // Ungrouped devices get their own key.
  auto solo = registry.Enroll(0xD2);
  ASSERT_TRUE(solo.ok());
  auto solo_key = registry.DeploymentKey(*solo);
  ASSERT_TRUE(solo_key.ok());
  EXPECT_FALSE(*solo_key == *group_key);
}

TEST(DeviceRegistryTest, RevokeSemantics) {
  DeviceRegistry registry;
  auto id = registry.Enroll(0xD3);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.Revoke(12345).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(registry.Revoke(*id).ok());
  EXPECT_EQ(registry.Revoke(*id).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(registry.Lookup(*id)->status, DeviceStatus::kRevoked);

  // Revoked devices refuse dispatch.
  const std::vector<uint8_t> bytes(16, 0);
  EXPECT_EQ(registry.Dispatch(*id, bytes).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(DeviceRegistryTest, ConcurrentEnrollLookupRevoke) {
  RegistryConfig config;
  config.shard_count = 8;
  DeviceRegistry registry(config);
  const GroupId group = registry.CreateGroup("swarm");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::vector<DeviceId>> enrolled(kThreads);
  std::atomic<int> lookup_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = registry.Enroll(
            0xC0FFEE00u + static_cast<uint64_t>(t * kPerThread + i), group);
        if (!id.ok()) { ++lookup_errors; continue; }
        enrolled[static_cast<size_t>(t)].push_back(*id);
        // Immediately read back through the striped table.
        auto info = registry.Lookup(*id);
        if (!info.ok() || info->group != group) ++lookup_errors;
        // Revoke every 4th enrollment from its own thread.
        if (i % 4 == 3 && !registry.Revoke(*id).ok()) ++lookup_errors;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(lookup_errors.load(), 0);
  std::set<DeviceId> unique_ids;
  for (const auto& ids : enrolled) unique_ids.insert(ids.begin(), ids.end());
  EXPECT_EQ(unique_ids.size(),
            static_cast<size_t>(kThreads) * kPerThread);

  const auto stats = registry.Stats();
  EXPECT_EQ(stats.devices, static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.revoked, static_cast<size_t>(kThreads) * (kPerThread / 4));
  EXPECT_EQ(stats.groups, 1u);
  auto members = registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), unique_ids.size());
}

// --- PackageCache -------------------------------------------------------------

TEST(PackageCacheTest, HitOnSameInputsMissOnDifferent) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  ASSERT_TRUE(registry.Enroll(0xCA, group).ok());
  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  const auto policy = core::EncryptionPolicy::Full();

  PackageCache cache;
  auto first = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                policy);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                 policy);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared artifact
  EXPECT_EQ(cache.Stats().artifact_hits, 1u);
  EXPECT_EQ(cache.Stats().artifact_misses, 1u);

  // A different policy re-seals but does not recompile.
  auto partial = cache.GetOrBuild(kTinyProgram, *key, registry.key_config(),
                                  core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(partial.ok());
  EXPECT_NE(first->get(), partial->get());
  EXPECT_EQ(cache.Stats().artifact_misses, 2u);
  EXPECT_EQ(cache.Stats().compile_misses, 1u);
  EXPECT_EQ(cache.Stats().compile_hits, 1u);

  // A different key epoch is a different artifact address.
  crypto::KeyConfig rotated = registry.key_config();
  rotated.epoch = 7;
  auto rotated_artifact = cache.GetOrBuild(kTinyProgram, *key, rotated,
                                           policy);
  ASSERT_TRUE(rotated_artifact.ok());
  EXPECT_EQ(cache.Stats().artifact_misses, 3u);
}

TEST(PackageCacheTest, CachedArtifactValidatesOnMembersRejectsElsewhere) {
  DeviceRegistry registry;
  const GroupId group = registry.CreateGroup("g");
  std::vector<DeviceId> members;
  for (uint64_t i = 0; i < 5; ++i) {
    auto id = registry.Enroll(0xCAFE00 + i, group);
    ASSERT_TRUE(id.ok());
    members.push_back(*id);
  }
  // A device enrolled on its own key and one in a different group.
  auto outsider = registry.Enroll(0xBAD);
  ASSERT_TRUE(outsider.ok());
  const GroupId other_group = registry.CreateGroup("other");
  auto other_member = registry.Enroll(0xBAD2, other_group);
  ASSERT_TRUE(other_member.ok());

  auto key = registry.GroupKey(group);
  ASSERT_TRUE(key.ok());
  PackageCache cache;
  auto artifact = cache.GetOrBuild(
      kTinyProgram, *key, registry.key_config(),
      core::EncryptionPolicy::PartialRandom(0.5));
  ASSERT_TRUE(artifact.ok());

  // The one cached artifact validates and runs on EVERY group member...
  for (DeviceId member : members) {
    auto run = registry.Dispatch(member, (*artifact)->wire);
    ASSERT_TRUE(run.ok()) << "member " << member << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->exec.exit_code, kTinyProgramResult);
  }
  // ...and only cache hits were spent serving them.
  EXPECT_EQ(cache.Stats().artifact_misses, 1u);

  // Non-members reject the same bytes (wrong PUF-based key -> bad digest).
  for (DeviceId stranger : {*outsider, *other_member}) {
    auto run = registry.Dispatch(stranger, (*artifact)->wire);
    EXPECT_FALSE(run.ok()) << "non-member " << stranger << " ran the package";
  }
}

TEST(PackageCacheTest, LruEvictsAtCapacity) {
  PackageCacheConfig config;
  config.shard_count = 1;
  config.max_artifacts_per_shard = 2;
  PackageCache cache(config);

  DeviceRegistry registry;
  auto id = registry.Enroll(0xE1);
  ASSERT_TRUE(id.ok());
  auto key = registry.DeploymentKey(*id);
  ASSERT_TRUE(key.ok());

  // Three distinct artifacts through a 2-slot shard.
  for (uint64_t epoch = 0; epoch < 3; ++epoch) {
    crypto::KeyConfig config_epoch = registry.key_config();
    config_epoch.epoch = epoch;
    ASSERT_TRUE(cache.GetOrBuild(kTinyProgram, *key, config_epoch,
                                 core::EncryptionPolicy::Full())
                    .ok());
  }
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.artifact_misses, 3u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.artifact_entries, 2u);
}

// --- DeploymentEngine ---------------------------------------------------------

struct FleetFixture {
  FleetFixture(size_t member_count, GroupId* group_out) {
    *group_out = registry.CreateGroup("fleet");
    for (uint64_t i = 0; i < member_count; ++i) {
      auto id = registry.Enroll(0xF00 + i, *group_out);
      EXPECT_TRUE(id.ok());
    }
  }
  DeviceRegistry registry;
  PackageCache cache;
};

TEST(DeploymentEngineTest, CleanCampaignSealsOnceAndRunsEverywhere) {
  GroupId group;
  FleetFixture fleet(6, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 3;
  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->targets, 6u);
  EXPECT_EQ(report->succeeded, 6u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->deliveries, 6u);
  EXPECT_EQ(report->retries, 0u);
  for (const auto& outcome : report->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.exit_code, kTinyProgramResult);
    EXPECT_EQ(outcome.attempts, 1u);
  }
  // Encrypt-once: one miss, the rest hits.
  EXPECT_EQ(report->cache_artifact_misses, 1u);
  EXPECT_EQ(report->cache_artifact_hits, 5u);
  EXPECT_EQ(report->cache_compile_misses, 1u);
}

TEST(DeploymentEngineTest, RevokedDevicesAreSkippedNotRetried) {
  GroupId group;
  FleetFixture fleet(4, &group);
  auto members = fleet.registry.GroupMembers(group);
  ASSERT_TRUE(members.ok());
  ASSERT_TRUE(fleet.registry.Revoke(members->front()).ok());

  DeploymentEngine engine(fleet.registry, fleet.cache);
  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.max_attempts = 5;
  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 3u);
  EXPECT_EQ(report->revoked, 1u);
  for (const auto& outcome : report->outcomes) {
    if (outcome.revoked) {
      // Skipped before any wire work: no deliveries spent on it at all.
      EXPECT_EQ(outcome.attempts, 0u);
      EXPECT_EQ(outcome.last_status.code(), ErrorCode::kFailedPrecondition);
    }
  }
  // Only the three live devices consumed deliveries.
  EXPECT_EQ(report->deliveries, 3u);
}

TEST(DeploymentEngineTest, EmptyCampaignIsAnError) {
  DeviceRegistry registry;
  PackageCache cache;
  DeploymentEngine engine(registry, cache);
  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  EXPECT_EQ(engine.Run(campaign).status().code(), ErrorCode::kInvalidArgument);
}

// Retry behaviour under every channel fault: with a 50 % fault rate and a
// deep retry budget, every device eventually lands a clean delivery, no
// faulted delivery ever executes, and mutating faults show real retries.
class CampaignFaultTest : public ::testing::TestWithParam<net::ChannelFault> {};

TEST_P(CampaignFaultTest, RetriesUntilCleanDelivery) {
  GroupId group;
  FleetFixture fleet(8, &group);
  DeploymentEngine engine(fleet.registry, fleet.cache);

  CampaignConfig campaign;
  campaign.source = kTinyProgram;
  campaign.group = group;
  campaign.workers = 2;
  campaign.max_attempts = 40;  // p(fail) = 0.5^40 per device
  campaign.channel.fault = GetParam();
  campaign.channel.patch_offset = 40;  // inside the text section
  campaign.fault_rate = 0.5;
  campaign.campaign_seed = 0xFA015 + static_cast<uint64_t>(GetParam());

  auto report = engine.Run(campaign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->succeeded, 8u) << net::ChannelFaultName(GetParam());
  for (const auto& outcome : report->outcomes) {
    ASSERT_TRUE(outcome.ok);
    // A faulted delivery must never execute: success always means the
    // signed program ran bit-exact.
    EXPECT_EQ(outcome.exit_code, kTinyProgramResult)
        << net::ChannelFaultName(GetParam()) << ": MISEXECUTION";
  }
  if (GetParam() == net::ChannelFault::kNone) {
    EXPECT_EQ(report->retries, 0u);
  } else {
    // 8 devices at 50 % first-attempt fault rate: retries are all but
    // certain (p(none) = 0.5^8), and every retry stems from a rejection.
    EXPECT_GT(report->retries, 0u) << net::ChannelFaultName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, CampaignFaultTest,
    ::testing::Values(net::ChannelFault::kNone,
                      net::ChannelFault::kRandomBitFlips,
                      net::ChannelFault::kBytePatch,
                      net::ChannelFault::kTruncate,
                      net::ChannelFault::kInstructionPatch,
                      net::ChannelFault::kDuplicate),
    [](const ::testing::TestParamInfo<net::ChannelFault>& info) {
      std::string name(net::ChannelFaultName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace eric::fleet
