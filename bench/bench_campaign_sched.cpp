// Campaign scheduler overhead and throttling: waved vs flat rollouts.
//
// The scheduler buys safety (canary gates, bounded blast radius) and
// control (rate limits, concurrency budgets, pause/resume) on top of the
// engine. This bench prices that: at 1000 devices it runs the same
// campaign three ways and reports wall time and peak simultaneously
// in-flight deliveries —
//
//   flat       one wave, no limits: the engine's raw throughput, with a
//              governor attached only to observe the in-flight peak.
//   waved      canary cohort + rolling waves with a promotion gate after
//              every wave; the wave barriers are the cost of staged
//              rollout.
//   throttled  waved plus a token-bucket rate limit and a per-group
//              concurrency budget; peak in-flight must collapse to the
//              budget.
//
// Emits BENCH_campaign_sched.json for the perf-trajectory tooling.
//
//   bench_campaign_sched [--quick] [--devices N] [--out FILE]
#include <cstdio>
#include <cstring>

#include "fleet/campaign_scheduler.h"
#include "support/bench_json.h"

using namespace eric;

namespace {

/// One mode's measurements.
struct ModeResult {
  const char* mode = "";
  double wall_ms = 0;
  size_t peak_in_flight = 0;
  size_t succeeded = 0;
  uint64_t deliveries = 0;
  size_t waves = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t devices = 1000;
  const char* out_path = "BENCH_campaign_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      devices = 200;
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      devices = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_campaign_sched [--quick] [--devices N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  // A small program keeps per-device simulator time low, so the numbers
  // isolate scheduling behaviour rather than interpreter speed.
  const char* source = R"(
    fn main() {
      var sum = 0;
      var i = 1;
      while (i <= 32) { sum = sum + i * i; i = i + 1; }
      return sum;
    }
  )";
  constexpr uint32_t kLatencyUs = 2000;
  constexpr size_t kWorkers = 8;
  constexpr size_t kGroupBudget = 4;
  const double throttle_rate = static_cast<double>(devices) * 2.5;

  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "bench.campaign_sched.v1";
  fleet::DeviceRegistry registry(registry_config);
  const fleet::GroupId group = registry.CreateGroup("sched-bench");
  std::printf("enrolling %zu devices...\n", devices);
  for (size_t i = 0; i < devices; ++i) {
    auto id = registry.Enroll(0x5CED000 + i, group);
    if (!id.ok()) {
      std::fprintf(stderr, "enroll failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);
  fleet::CampaignScheduler scheduler(engine, registry);

  fleet::CampaignConfig campaign;
  campaign.source = source;
  campaign.policy = core::EncryptionPolicy::PartialRandom(0.5);
  campaign.group = group;
  campaign.workers = kWorkers;
  campaign.delivery_latency_us = kLatencyUs;

  auto run_mode = [&](const char* mode,
                      const fleet::SchedulerConfig& policy) -> ModeResult {
    ModeResult result;
    result.mode = mode;
    auto report = scheduler.Run(campaign, policy);
    if (!report.ok() || report->succeeded != devices) {
      std::fprintf(stderr, "%s campaign failed\n", mode);
      return result;
    }
    result.wall_ms = report->wall_ms;
    result.peak_in_flight = report->peak_in_flight;
    result.succeeded = report->succeeded;
    result.deliveries = report->deliveries;
    result.waves = report->waves.size();
    std::printf("  %-10s %4zu wave%s  wall %8.1f ms  peak %2zu in flight  "
                "%zu/%zu ok\n",
                mode, result.waves, result.waves == 1 ? " " : "s",
                result.wall_ms, result.peak_in_flight, result.succeeded,
                devices);
    return result;
  };

  std::printf("campaign: %zu devices, %zu workers, %u us delivery latency\n",
              devices, kWorkers, kLatencyUs);

  fleet::SchedulerConfig flat_policy;  // one wave, observation only
  const ModeResult flat = run_mode("flat", flat_policy);

  fleet::SchedulerConfig waved_policy;
  waved_policy.canary_size = devices / 25;
  waved_policy.canary_failure_threshold = 0.1;
  waved_policy.wave_size = devices / 8;
  waved_policy.wave_failure_threshold = 0.1;
  const ModeResult waved = run_mode("waved", waved_policy);

  fleet::SchedulerConfig throttled_policy = waved_policy;
  throttled_policy.limits.dispatch_rate = throttle_rate;
  throttled_policy.limits.dispatch_burst = 8.0;
  throttled_policy.limits.group_concurrency = kGroupBudget;
  const ModeResult throttled = run_mode("throttled", throttled_policy);

  const double overhead_pct =
      flat.wall_ms > 0 ? (waved.wall_ms - flat.wall_ms) / flat.wall_ms * 100.0
                       : 0.0;
  std::printf("\nwave overhead over flat: %+.1f%%\n", overhead_pct);
  std::printf("throttled peak in flight: %zu (budget %zu)\n",
              throttled.peak_in_flight, kGroupBudget);

  const bool pass = flat.succeeded == devices && waved.succeeded == devices &&
                    throttled.succeeded == devices &&
                    throttled.peak_in_flight <= kGroupBudget;
  std::printf("result: %s\n", pass ? "PASS" : "FAIL");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "campaign_sched");
  json.Field("devices", devices);
  json.Field("workers", kWorkers);
  json.Field("delivery_latency_us", kLatencyUs);
  json.Key("modes");
  json.BeginArray();
  for (const ModeResult* result : {&flat, &waved, &throttled}) {
    json.BeginObject();
    json.Field("mode", result->mode);
    json.Field("wall_ms", result->wall_ms);
    json.Field("peak_in_flight", result->peak_in_flight);
    json.Field("succeeded", result->succeeded);
    json.Field("deliveries", result->deliveries);
    json.Field("waves", result->waves);
    json.EndObject();
  }
  json.EndArray();
  json.Field("wave_overhead_pct", overhead_pct);
  json.Field("throttle_rate_per_s", throttle_rate);
  json.Field("group_concurrency_budget", kGroupBudget);
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
