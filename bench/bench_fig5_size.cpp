// Fig 5: program package size of encrypted packages vs the unencrypted
// compiled program, normalized to the plaintext size.
//
// Paper: full encryption adds only the 256-bit signature; partial
// encryption adds 1 bit per instruction (1 bit per 16 bits when RVC
// kicks in); reported avg +1.59 %, max +3.73 % on MiBench binaries.
// Our kernels are smaller than MiBench executables, so the constant
// 68-byte header+signature weighs more on the smallest programs — the
// bench prints the shape (partial > full, smaller program => larger
// relative increase) plus a size-extrapolated row at MiBench scale.
#include <cstdio>

#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "workloads/workloads.h"

using namespace eric;

int main() {
  crypto::KeyConfig config;
  core::TrustedDevice device(0xF165, config);
  core::SoftwareSource source(device.Enroll(), config);

  std::printf("FIG 5: Package size, normalized to unencrypted program size\n");
  std::printf("%-14s %9s %12s %12s %12s %12s\n", "workload", "plain(B)",
              "full(B)", "full(+%)", "partial(B)", "partial(+%)");

  double sum_full = 0.0, sum_partial = 0.0;
  double max_full = 0.0, max_partial = 0.0;
  int count = 0;
  for (const auto& w : workloads::AllWorkloads()) {
    auto full = source.CompileAndPackage(w.source,
                                         core::EncryptionPolicy::Full());
    auto partial = source.CompileAndPackage(
        w.source, core::EncryptionPolicy::PartialRandom(0.5));
    if (!full.ok() || !partial.ok()) {
      std::printf("%-14s FAILED\n", w.name.c_str());
      return 1;
    }
    const double plain =
        static_cast<double>(full->compile.program.image.size());
    const double full_size =
        static_cast<double>(full->packaging.package.WireSize());
    const double partial_size =
        static_cast<double>(partial->packaging.package.WireSize());
    const double full_pct = 100.0 * (full_size - plain) / plain;
    const double partial_pct = 100.0 * (partial_size - plain) / plain;
    std::printf("%-14s %9.0f %12.0f %+11.2f%% %12.0f %+11.2f%%\n",
                w.name.c_str(), plain, full_size, full_pct, partial_size,
                partial_pct);
    sum_full += full_pct;
    sum_partial += partial_pct;
    max_full = std::max(max_full, full_pct);
    max_partial = std::max(max_partial, partial_pct);
    ++count;
  }
  std::printf("%-14s %9s %12s %+11.2f%% %12s %+11.2f%%   (max %+.2f%% / "
              "%+.2f%%)\n",
              "average", "", "", sum_full / count, "", sum_partial / count,
              max_full, max_partial);
  std::printf("paper:        avg +1.59%%, max +3.73%% (MiBench-sized "
              "binaries)\n");

  // Extrapolation: the overhead model is exact — 68 bytes fixed (header +
  // signature) plus ceil(instrs/8) map bytes for partial. At MiBench-like
  // sizes the model reproduces the paper's band.
  std::printf("\nModel extrapolation (partial encryption, 4-byte avg "
              "instruction):\n");
  for (const double kib : {8.0, 16.0, 32.0, 64.0}) {
    const double bytes = kib * 1024;
    const double instrs = bytes / 4.0;
    const double overhead = 68.0 + instrs / 8.0;
    std::printf("  %5.0f KiB binary: +%.2f %%\n", kib,
                100.0 * overhead / bytes);
  }
  return 0;
}
