// Device-side update-agent economics: what a staged A/B apply costs,
// what a rollback costs, what the durable slot manifest adds on top of
// the image bytes, and how fast the chaos-soak's campaign loop turns
// over when every apply is a full stage/verify/flip/health cycle with
// crash injection in the mix.
//
// Headline metrics:
//
//   manifest.overhead_ratio   slot manifest file bytes / stored image
//                             bytes. Deterministic (same sources, keys,
//                             and record framing on every host) and
//                             tightly gated: the manifest must stay a
//                             thin frame around the images, not a second
//                             copy of them.
//   rollback.vs_apply_ratio   mean crash-rollback Recover() wall time vs
//                             mean successful Apply wall time. Both sides
//                             persist the manifest, so the ratio is
//                             machine-portable but fsync-noisy — gated
//                             generously. A rollback must never be an
//                             order of magnitude dearer than the apply it
//                             undoes.
//   soak.campaigns_per_second fleet campaign rounds (with agent applies
//                             and probabilistic crash injection) per
//                             second — reported for trend-watching, not
//                             gated (pure wall time).
//
//   bench_agent [--quick] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "agent/update_agent.h"
#include "fleet/deployment_engine.h"
#include "fleet/package_cache.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"
#include "workloads/workloads.h"

using namespace eric;

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  size_t devices = 16, apply_iters = 60, soak_rounds = 10;
  const char* out_path = "BENCH_agent.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      devices = 6;
      apply_iters = 20;
      soak_rounds = 4;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_agent [--quick] [--out FILE]\n");
      return 2;
    }
  }

  const fs::path work_dir =
      fs::temp_directory_path() / "eric-bench-agent";
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir);

  // Real sealed wire images (the bytes an agent actually stores), built
  // once through the same cache the fleet path uses.
  const std::string v1 = workloads::MakeSyntheticRelease(3);
  const std::string v2 = workloads::MakeSyntheticRelease(5);
  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "bench.agent.v1";
  fleet::DeviceRegistry registry(registry_config);
  const fleet::GroupId group = registry.CreateGroup("agent");
  std::vector<fleet::DeviceId> targets;
  for (size_t d = 0; d < devices; ++d) {
    auto id = registry.Enroll(0xA6E27000 + d, group);
    if (!id.ok()) {
      std::fprintf(stderr, "enroll failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    targets.push_back(*id);
  }
  fleet::PackageCache cache;
  auto sealing = registry.SealingContextFor(targets.front());
  if (!sealing.ok()) return 1;
  auto v1_artifact = cache.GetOrBuild(v1, sealing->key, sealing->config,
                                      core::EncryptionPolicy::Full());
  auto v2_artifact = cache.GetOrBuild(v2, sealing->key, sealing->config,
                                      core::EncryptionPolicy::Full());
  if (!v1_artifact.ok() || !v2_artifact.ok()) return 1;
  const crypto::Sha256Digest key_fp =
      fleet::FingerprintKey(sealing->key);

  // --- apply latency: alternating versions, full staged cycle ---------
  const std::string manifest = (work_dir / "slots-bench.bin").string();
  agent::UpdateAgent agent(1, manifest);
  const auto healthy = [](std::span<const uint8_t>) { return Status::Ok(); };
  double apply_total_us = 0;
  for (size_t i = 0; i < apply_iters; ++i) {
    const auto& wire =
        i % 2 == 0 ? (*v1_artifact)->wire : (*v2_artifact)->wire;
    const auto start = std::chrono::steady_clock::now();
    Status applied = agent.Apply(wire, 1 + i % 2, key_fp, healthy);
    apply_total_us += MicrosecondsSince(start);
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   applied.ToString().c_str());
      return 1;
    }
  }
  const double apply_us = apply_total_us / apply_iters;

  // Manifest overhead while both slots hold an image — the steady state.
  const auto state = agent.state();
  const uint64_t image_bytes =
      state.slots[0].image_bytes + state.slots[1].image_bytes;
  const uint64_t manifest_bytes = fs::file_size(manifest, ec);
  const double overhead_ratio =
      image_bytes == 0 ? 0.0
                       : static_cast<double>(manifest_bytes) /
                             static_cast<double>(image_bytes);

  // --- rollback latency: crash-after-flip, then the recovery path -----
  double rollback_total_us = 0;
  for (size_t i = 0; i < apply_iters; ++i) {
    agent.ArmCrash(agent::CrashPoint::kAfterFlip);
    const auto& wire =
        i % 2 == 0 ? (*v2_artifact)->wire : (*v1_artifact)->wire;
    if (agent.Apply(wire, 10 + i, key_fp, healthy).ok()) {
      std::fprintf(stderr, "armed crash did not fire\n");
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    Status recovered = agent.Recover();
    rollback_total_us += MicrosecondsSince(start);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover failed: %s\n",
                   recovered.ToString().c_str());
      return 1;
    }
  }
  const double rollback_us = rollback_total_us / apply_iters;
  const double rollback_vs_apply =
      apply_us == 0 ? 0.0 : rollback_us / apply_us;

  // --- soak-loop throughput: campaign rounds with chaos in the mix ----
  registry.SetAgentCrashInjection(0.05, 0xA6E27);
  fleet::DeploymentEngine engine(registry, cache);
  uint64_t soak_succeeded = 0, soak_targets = 0;
  const auto soak_start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < soak_rounds; ++round) {
    fleet::CampaignConfig campaign;
    campaign.source = round % 2 == 0 ? v1 : v2;
    campaign.devices = targets;
    campaign.workers = 4;
    campaign.max_attempts = 3;  // crash injection needs retry headroom
    campaign.campaign_seed = 0xA6E20000ull + round;
    if (round > 0) {
      campaign.delta = true;
      campaign.delta_base_source = round % 2 == 0 ? v2 : v1;
    }
    auto report = engine.Run(campaign);
    if (!report.ok()) {
      std::fprintf(stderr, "soak round %zu failed: %s\n", round,
                   report.status().ToString().c_str());
      return 1;
    }
    soak_succeeded += report->succeeded;
    soak_targets += report->targets;
  }
  const double soak_wall_s =
      MicrosecondsSince(soak_start) / 1e6;
  const double campaigns_per_second =
      soak_wall_s == 0 ? 0.0 : static_cast<double>(soak_rounds) / soak_wall_s;

  uint64_t crash_recoveries = 0, rollbacks = 0;
  for (fleet::DeviceId id : targets) {
    auto inspection = registry.InspectAgent(id);
    if (!inspection.ok() || !inspection->active_crc_valid) {
      std::fprintf(stderr, "post-soak inspection failed for device %llu\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
    crash_recoveries += inspection->state.counters.crash_recoveries;
    rollbacks += inspection->state.counters.rollbacks;
  }

  const bool pass = overhead_ratio > 0 && overhead_ratio <= 1.25 &&
                    rollback_vs_apply <= 3.0 &&
                    soak_succeeded == soak_targets;

  std::printf("apply: %.1f us mean over %zu staged cycles (image %zu "
              "bytes)\n",
              apply_us, apply_iters, (*v1_artifact)->wire.size());
  std::printf("rollback: %.1f us mean crash-recovery (%.3fx apply)\n",
              rollback_us, rollback_vs_apply);
  std::printf("manifest: %llu bytes over %llu image bytes (%.3fx)\n",
              static_cast<unsigned long long>(manifest_bytes),
              static_cast<unsigned long long>(image_bytes), overhead_ratio);
  std::printf("soak loop: %zu rounds x %zu devices in %.2f s (%.2f "
              "campaigns/s; %llu crash recoveries, %llu rollbacks)\n",
              soak_rounds, devices, soak_wall_s, campaigns_per_second,
              static_cast<unsigned long long>(crash_recoveries),
              static_cast<unsigned long long>(rollbacks));
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "agent");
  json.Field("devices", devices);
  json.Field("apply_iters", apply_iters);
  json.Key("apply");
  json.BeginObject();
  json.Field("mean_us", apply_us);
  json.Field("image_bytes", (*v1_artifact)->wire.size());
  json.EndObject();
  json.Key("rollback");
  json.BeginObject();
  json.Field("mean_us", rollback_us);
  json.Field("vs_apply_ratio", rollback_vs_apply);
  json.EndObject();
  json.Key("manifest");
  json.BeginObject();
  json.Field("file_bytes", manifest_bytes);
  json.Field("image_bytes", image_bytes);
  json.Field("overhead_ratio", overhead_ratio);
  json.EndObject();
  json.Key("soak");
  json.BeginObject();
  json.Field("rounds", soak_rounds);
  json.Field("campaigns_per_second", campaigns_per_second);
  json.Field("succeeded", soak_succeeded);
  json.Field("targets", soak_targets);
  json.Field("crash_recoveries", crash_recoveries);
  json.Field("rollbacks", rollbacks);
  json.EndObject();
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  fs::remove_all(work_dir, ec);
  return pass ? 0 : 1;
}
