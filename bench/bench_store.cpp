// Durable-store throughput: what fsync policy costs on the append path,
// and what cold-start recovery costs as the fleet grows.
//
// Part 1 — append throughput by sync policy. Four worker threads append
// fixed-size records under each policy: fsync-per-append (the durability
// ceiling), group commit at several gather windows (one fsync covers a
// batch of concurrent appends), and no-fsync (the OS-cache floor). After
// each run the log is replayed to prove every acknowledged record is
// present and intact — throughput that loses records is not throughput.
//
// Part 2 — cold-start recovery vs fleet size. A registry state directory
// is populated by enrollment, then reopened cold: once replaying the raw
// enrollment WAL, once from a snapshot. Recovery re-simulates each
// device's silicon (PUF enrollment + conversion-mask provisioning), so
// both paths are dominated by the same per-device work — the snapshot's
// value is compaction, not CPU — and the honest headline is the
// recovery/enroll ratio, which should sit near 1.
//
// Emits BENCH_store.json for the perf-trajectory tooling.
//
//   bench_store [--quick] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "fleet/device_registry.h"
#include "store/record_io.h"
#include "store/wal.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"

using namespace eric;

namespace {

namespace fs = std::filesystem;

struct AppendPoint {
  std::string mode;
  uint32_t window_us = 0;
  double appends_per_second = 0;
  uint64_t records = 0;
  bool intact = false;  ///< replay found every record undamaged
};

struct RecoveryPoint {
  size_t devices = 0;
  double enroll_ms = 0;
  double wal_recovery_ms = 0;   ///< cold start replaying the raw WAL
  double snap_recovery_ms = 0;  ///< cold start from a snapshot
  double ratio = 0;             ///< snapshot recovery / enrollment
};

std::string FreshDir(const char* tag, int index) {
  const fs::path dir = fs::temp_directory_path() /
                       ("eric-bench-store-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(index));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

AppendPoint BenchAppends(const std::string& mode_name,
                         const store::WalOptions& options, size_t threads,
                         size_t total_appends, int index) {
  AppendPoint point;
  point.mode = mode_name;
  point.window_us = options.sync == store::SyncMode::kGroupCommit
                        ? options.group_commit_window_us
                        : 0;
  const std::string dir = FreshDir("append", index);
  const std::string path = dir + "/bench.wal";

  {
    store::Wal wal;
    if (!wal.Open(path, options).ok()) return point;
    std::atomic<size_t> errors{0};
    const size_t per_thread = total_appends / threads;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // 64-byte payload: roughly one registry enrollment record plus
        // headroom.
        store::RecordWriter rec;
        for (int i = 0; i < 8; ++i) rec.U64(0x5709EBE9C + t);
        for (size_t i = 0; i < per_thread; ++i) {
          if (!wal.Append(1, rec.bytes()).ok()) ++errors;
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double wall_ms = MillisecondsSince(start);
    point.records = wal.appended();
    if (errors.load() == 0 && wall_ms > 0) {
      point.appends_per_second =
          static_cast<double>(point.records) / (wall_ms / 1000.0);
    }
  }

  // Acknowledged throughput must be durable throughput.
  uint64_t replayed = 0;
  auto recovered = store::Wal::Replay(
      path,
      [&replayed](const store::WalRecord& record) -> Status {
        if (record.payload.size() != 64) {
          return Status(ErrorCode::kCorruptPackage, "payload damaged");
        }
        ++replayed;
        return Status::Ok();
      });
  point.intact = recovered.ok() && !recovered->tail_corrupted &&
                 replayed == point.records;
  fs::remove_all(dir);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  size_t append_total = 8000;
  std::vector<size_t> fleet_sizes{100, 400, 1000};
  const char* out_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      append_total = 2000;
      fleet_sizes = {50, 100, 200};
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_store [--quick] [--out FILE]\n");
      return 2;
    }
  }
  constexpr size_t kThreads = 4;

  // --- Part 1: append throughput by sync policy -----------------------------
  std::printf("PART 1: WAL append throughput, %zu threads x %zu appends, "
              "64-byte records\n", kThreads, append_total / kThreads);
  struct ModeSpec {
    const char* name;
    store::SyncMode sync;
    uint32_t window_us;
  };
  const ModeSpec modes[] = {
      {"fsync-per-append", store::SyncMode::kEveryAppend, 0},
      {"group-commit", store::SyncMode::kGroupCommit, 0},
      {"group-commit", store::SyncMode::kGroupCommit, 200},
      {"group-commit", store::SyncMode::kGroupCommit, 1000},
      {"no-fsync", store::SyncMode::kNever, 0},
  };
  std::vector<AppendPoint> appends;
  bool all_intact = true;
  int index = 0;
  for (const auto& mode : modes) {
    store::WalOptions options;
    options.sync = mode.sync;
    options.group_commit_window_us = mode.window_us;
    AppendPoint point =
        BenchAppends(mode.name, options, kThreads, append_total, index++);
    all_intact = all_intact && point.intact;
    std::printf("  %-16s window %5u us  %9.0f appends/s  %s\n", point.mode.c_str(),
                point.window_us, point.appends_per_second,
                point.intact ? "(replay intact)" : "REPLAY DAMAGED");
    appends.push_back(point);
  }
  // Headline: what sharing fsyncs buys over paying one per record.
  const double group_commit_speedup =
      appends[0].appends_per_second > 0
          ? appends[1].appends_per_second / appends[0].appends_per_second
          : 0;
  std::printf("  group-commit over fsync-per-append: %.1fx %s\n\n",
              group_commit_speedup, all_intact ? "PASS" : "FAIL");

  // --- Part 2: cold-start recovery vs fleet size ----------------------------
  std::printf("PART 2: registry cold-start recovery vs fleet size\n");
  fleet::RegistryConfig config;
  config.key_config.domain = "bench.store.v1";
  std::vector<RecoveryPoint> recoveries;
  bool recovery_ok = true;
  for (size_t devices : fleet_sizes) {
    RecoveryPoint point;
    point.devices = devices;
    const std::string dir = FreshDir("recovery", index++);
    {
      fleet::DeviceRegistry registry(config);
      if (!registry.OpenStorage(dir).ok()) return 1;
      const fleet::GroupId group = registry.CreateGroup("bench");
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < devices; ++i) {
        if (!registry.Enroll(0xBE9C5000 + i, group).ok()) return 1;
      }
      point.enroll_ms = MillisecondsSince(start);
    }
    {
      // Cold start 1: replay the raw enrollment WAL.
      fleet::DeviceRegistry registry(config);
      if (!registry.OpenStorage(dir).ok()) return 1;
      const auto info = registry.storage_info();
      point.wal_recovery_ms = info.recovery_ms;
      recovery_ok = recovery_ok && info.devices_recovered == devices;
      if (!registry.Snapshot().ok()) return 1;  // compact for cold start 2
    }
    {
      // Cold start 2: load the snapshot (WALs are now empty).
      fleet::DeviceRegistry registry(config);
      if (!registry.OpenStorage(dir).ok()) return 1;
      const auto info = registry.storage_info();
      point.snap_recovery_ms = info.recovery_ms;
      recovery_ok = recovery_ok && info.snapshot_loaded &&
                    info.devices_recovered == devices &&
                    info.wal_records_replayed == 0;
    }
    point.ratio = point.enroll_ms > 0
                      ? point.snap_recovery_ms / point.enroll_ms
                      : 0;
    std::printf("  %5zu devices  enroll %8.1f ms  recover(wal) %8.1f ms  "
                "recover(snap) %8.1f ms  ratio %.2f\n",
                devices, point.enroll_ms, point.wal_recovery_ms,
                point.snap_recovery_ms, point.ratio);
    recoveries.push_back(point);
    fs::remove_all(dir);
  }
  double max_ratio = 0;
  for (const auto& point : recoveries) {
    max_ratio = std::max(max_ratio, point.ratio);
  }
  // Recovery re-simulates enrollment, so it should cost about one
  // enrollment pass — flag anything past 3x as a recovery-path regression.
  const bool recovery_pass = recovery_ok && max_ratio < 3.0;
  std::printf("  worst recovery/enroll ratio: %.2f %s\n\n", max_ratio,
              recovery_pass ? "PASS" : "FAIL");

  // --- JSON -----------------------------------------------------------------
  const bool pass = all_intact && recovery_pass;
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "store");
  json.Field("append_threads", kThreads);
  json.Field("append_total", append_total);
  json.Key("appends");
  json.BeginArray();
  for (const auto& point : appends) {
    json.BeginObject();
    json.Field("mode", point.mode);
    json.Field("window_us", point.window_us);
    json.Field("appends_per_second", point.appends_per_second);
    json.Field("records", point.records);
    json.Field("intact", point.intact);
    json.EndObject();
  }
  json.EndArray();
  json.Field("group_commit_speedup", group_commit_speedup);
  json.Key("recovery");
  json.BeginArray();
  for (const auto& point : recoveries) {
    json.BeginObject();
    json.Field("devices", point.devices);
    json.Field("enroll_ms", point.enroll_ms);
    json.Field("wal_recovery_ms", point.wal_recovery_ms);
    json.Field("snap_recovery_ms", point.snap_recovery_ms);
    json.Field("recovery_vs_enroll_ratio", point.ratio);
    json.EndObject();
  }
  json.EndArray();
  json.Field("recovery_max_ratio", max_ratio);
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
