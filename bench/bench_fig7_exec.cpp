// Fig 7: end-to-end execution time of encrypted packages vs plain
// programs, normalized to the plain baseline.
//
// ERIC's decryption happens on the load path (decrypt-at-load): the HDE
// charges its cycles once, before the first instruction executes. The
// overhead therefore scales with static-size / runtime — the paper's
// "direct proportionality between the dynamic size of the program and the
// performance". Paper: avg +4.13 %, max +7.05 %.
// Emits BENCH_fig7_exec.json (per-workload cycles + overhead) so the perf
// trajectory is machine-readable.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "support/bench_json.h"
#include "workloads/workloads.h"

using namespace eric;

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fig7_exec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig7_exec [--out FILE]\n");
      return 2;
    }
  }
  crypto::KeyConfig config;
  core::TrustedDevice device(0xF167, config);
  core::SoftwareSource source(device.Enroll(), config);

  std::printf("FIG 7: Execution time (cycles), normalized to unencrypted "
              "execution\n");
  std::printf("%-14s %12s %12s %12s %10s\n", "workload", "plain(cyc)",
              "hde(cyc)", "total(cyc)", "overhead");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "fig7_exec");
  json.Field("policy", "full");
  json.Key("workloads");
  json.BeginArray();

  double sum = 0.0, worst = 0.0;
  int count = 0;
  for (const auto& w : workloads::AllWorkloads()) {
    auto built = source.CompileAndPackage(w.source,
                                          core::EncryptionPolicy::Full());
    if (!built.ok()) {
      std::printf("%-14s FAILED compile\n", w.name.c_str());
      return 1;
    }
    const auto plain = device.RunPlaintext(built->compile.program.image);
    auto secure =
        device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
    if (!secure.ok() || secure->exec.exit_code != plain.exec.exit_code) {
      std::printf("%-14s FAILED secure run\n", w.name.c_str());
      return 1;
    }
    const double base = static_cast<double>(plain.exec.cycles);
    const double hde = static_cast<double>(secure->hde_cycles.total());
    const double pct = 100.0 * hde / base;
    std::printf("%-14s %12.0f %12.0f %12.0f %+9.2f%%\n", w.name.c_str(),
                base, hde, base + hde, pct);
    json.BeginObject();
    json.Field("name", w.name);
    json.Field("plain_cycles", static_cast<uint64_t>(plain.exec.cycles));
    json.Field("hde_cycles", static_cast<uint64_t>(secure->hde_cycles.total()));
    json.Field("overhead_pct", pct);
    json.EndObject();
    sum += pct;
    worst = std::max(worst, pct);
    ++count;
  }
  std::printf("%-14s average +%.2f %%, max +%.2f %%\n", "summary",
              sum / count, worst);
  std::printf("paper:         average +4.13 %%, max +7.05 %%\n");

  json.EndArray();
  json.Field("average_overhead_pct", sum / count);
  json.Field("max_overhead_pct", worst);
  json.Field("paper_average_pct", 4.13);
  json.Field("paper_max_pct", 7.05);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
