// Fig 6: compile time of ERIC's pipeline (compile + sign + encrypt +
// package) normalized to plain compilation, per workload.
//
// Paper (Clang 11.1 + LLVM-tool signing/encryption): avg +15.22 %,
// worst +33.20 %. Each workload is measured over repeated runs; the
// median of per-run ratios is reported.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "workloads/workloads.h"

using namespace eric;

namespace {

double MedianRatio(const core::SoftwareSource& source,
                   const workloads::Workload& w, int repetitions) {
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep) {
    auto built = source.CompileAndPackage(
        w.source, core::EncryptionPolicy::PartialRandom(0.5));
    if (!built.ok()) return -1.0;
    const double compile_us = built->compile.TotalMicroseconds();
    const double eric_us = compile_us + built->packaging.timings.total();
    ratios.push_back(eric_us / compile_us);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

}  // namespace

int main() {
  crypto::KeyConfig config;
  core::TrustedDevice device(0xF166, config);
  core::SoftwareSource source(device.Enroll(), config);

  constexpr int kRepetitions = 21;
  std::printf("FIG 6: Compile time, normalized to plain compilation "
              "(median of %d runs)\n",
              kRepetitions);
  std::printf("%-14s %18s\n", "workload", "eric/baseline");

  double sum = 0.0, worst = 0.0;
  int count = 0;
  for (const auto& w : workloads::AllWorkloads()) {
    const double ratio = MedianRatio(source, w, kRepetitions);
    if (ratio < 0) {
      std::printf("%-14s FAILED\n", w.name.c_str());
      return 1;
    }
    std::printf("%-14s %17.4fx  (+%.2f %%)\n", w.name.c_str(), ratio,
                100.0 * (ratio - 1.0));
    sum += 100.0 * (ratio - 1.0);
    worst = std::max(worst, 100.0 * (ratio - 1.0));
    ++count;
  }
  std::printf("%-14s average +%.2f %%, worst +%.2f %%\n", "summary",
              sum / count, worst);
  std::printf("paper:         average +15.22 %%, worst +33.20 %%\n");
  return 0;
}
