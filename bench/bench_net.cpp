// Wire transport bench: frame codec throughput and delivery scaling.
//
// Part 1 — frame codec. Encode and decode throughput for dispatch-sized
// payloads, plus the deterministic framing overhead ratio (header +
// CRC trailer over total wire bytes). The ratio is pure arithmetic —
// identical on every host — so bench_compare gates it tightly; the
// MB/s numbers are informational.
//
// Part 2 — delivery scaling. A real FleetServer and SimClientFleet on
// loopback: fixed-size deliveries fanned out from engine-style worker
// threads while the event loop holds first a small and then a large
// connection count. Reported per point: throughput and p50/p99 RTT.
// The scaling ratio (large-fleet throughput over small-fleet) shows
// what idle connections cost the hot path; it should hover near 1.
//
// Emits BENCH_net.json for the perf-trajectory tooling.
//
//   bench_net [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/sim_client.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"

using namespace eric;

namespace {

std::vector<uint8_t> MakePayload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  return payload;
}

double Percentile(std::vector<double>& sorted_us, double pct) {
  if (sorted_us.empty()) return 0.0;
  size_t index = static_cast<size_t>(sorted_us.size() * pct / 100.0);
  index = std::min(index, sorted_us.size() - 1);
  return sorted_us[index];
}

struct DeliveryPoint {
  size_t connections = 0;
  size_t deliveries = 0;
  size_t failures = 0;
  double wall_ms = 0;
  double throughput_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One scaling point: `connections` handshaken devices held by a sim
/// fleet while `workers` threads push `deliveries` round-robin over the
/// first `targets` of them.
DeliveryPoint RunDeliveryPoint(size_t connections, size_t targets,
                               size_t deliveries, size_t workers,
                               const std::vector<uint8_t>& payload) {
  DeliveryPoint point;
  point.connections = connections;

  net::FleetServer server;
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    point.failures = deliveries;
    return point;
  }
  net::SimClientFleetConfig fleet_config;
  fleet_config.port = server.port();
  for (size_t i = 0; i < connections; ++i) {
    fleet_config.devices.push_back(0xBE9C0000 + i);
  }
  net::SimClientFleet fleet(std::move(fleet_config));
  auto fleet_up = fleet.Start();
  if (!fleet_up.ok() || !server.WaitForDevices(connections, 60'000)) {
    std::fprintf(stderr, "sim fleet failed to handshake %zu connections\n",
                 connections);
    point.failures = deliveries;
    return point;
  }

  const net::ChannelConfig clean;  // no fault process on the bench path
  std::vector<std::vector<double>> rtts(workers);
  std::vector<size_t> failed(workers, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      rtts[w].reserve(deliveries / workers + 1);
      for (size_t i = w; i < deliveries; i += workers) {
        const uint64_t device = 0xBE9C0000 + (i % targets);
        const auto sent = std::chrono::steady_clock::now();
        auto echoed = server.Deliver(device, payload, clean);
        if (echoed.ok() && echoed->size() == payload.size()) {
          rtts[w].push_back(MicrosecondsSince(sent));
        } else {
          ++failed[w];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  point.wall_ms = MillisecondsSince(start);

  std::vector<double> all;
  for (auto& slice : rtts) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());
  point.deliveries = all.size();
  point.failures = std::accumulate(failed.begin(), failed.end(), size_t{0});
  point.throughput_per_s = all.size() / (point.wall_ms / 1000.0);
  point.p50_us = Percentile(all, 50.0);
  point.p99_us = Percentile(all, 99.0);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  size_t codec_frames = 50'000;
  size_t small_fleet = 64;
  size_t large_fleet = 1024;
  size_t deliveries = 2'000;
  const char* out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      codec_frames = 10'000;
      small_fleet = 16;
      large_fleet = 256;
      deliveries = 500;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_net [--quick] [--out FILE]\n");
      return 2;
    }
  }

  // --- Part 1: frame codec --------------------------------------------------
  const size_t payload_bytes = 4096;
  const auto payload = MakePayload(payload_bytes);
  std::printf("PART 1: frame codec, %zu frames of %zu-byte payloads\n",
              codec_frames, payload_bytes);

  std::vector<uint8_t> stream;
  stream.reserve(codec_frames * (payload_bytes + net::kFrameOverheadBytes));
  const auto encode_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < codec_frames; ++i) {
    net::AppendFrame(stream, net::FrameType::kDispatch,
                     static_cast<uint32_t>(i), payload);
  }
  const double encode_ms = MillisecondsSince(encode_start);
  const double stream_mb = stream.size() / (1024.0 * 1024.0);
  const double encode_mb_s = stream_mb / (encode_ms / 1000.0);

  net::FrameDecoder decoder;
  const size_t chunk = 64 * 1024;
  size_t decoded = 0;
  const auto decode_start = std::chrono::steady_clock::now();
  for (size_t offset = 0; offset < stream.size(); offset += chunk) {
    const size_t n = std::min(chunk, stream.size() - offset);
    decoder.Feed({stream.data() + offset, n});
    while (decoder.Next().has_value()) ++decoded;
  }
  const double decode_ms = MillisecondsSince(decode_start);
  const double decode_mb_s = stream_mb / (decode_ms / 1000.0);

  // Pure arithmetic — the same on every host, so the perf gate on it is
  // tight: it only moves if the wire format itself grows.
  const double overhead_ratio =
      static_cast<double>(net::kFrameOverheadBytes) /
      static_cast<double>(payload_bytes + net::kFrameOverheadBytes);
  const bool codec_ok = decoded == codec_frames &&
                        decoder.crc_errors() == 0 && decoder.resyncs() == 0;

  std::printf("  encode: %8.1f ms  %7.0f MB/s\n", encode_ms, encode_mb_s);
  std::printf("  decode: %8.1f ms  %7.0f MB/s  (%zu frames, clean: %s)\n",
              decode_ms, decode_mb_s, decoded, codec_ok ? "yes" : "NO");
  std::printf("  overhead: %zu bytes/frame (ratio %.4f)\n\n",
              net::kFrameOverheadBytes, overhead_ratio);

  // --- Part 2: delivery scaling vs connection count -------------------------
  const size_t workers = 8;
  const size_t targets = small_fleet;  // same hot set at both points
  std::printf("PART 2: %zu deliveries of %zu bytes, %zu workers, "
              "%zu hot devices\n",
              deliveries, payload_bytes, workers, targets);

  std::vector<DeliveryPoint> points;
  for (size_t connections : {small_fleet, large_fleet}) {
    auto point =
        RunDeliveryPoint(connections, targets, deliveries, workers, payload);
    std::printf("  connections=%-5zu %6zu ok / %zu failed  %8.1f ms  "
                "%7.0f deliveries/s  p50 %6.0f us  p99 %6.0f us\n",
                point.connections, point.deliveries, point.failures,
                point.wall_ms, point.throughput_per_s, point.p50_us,
                point.p99_us);
    points.push_back(std::move(point));
  }
  // Large-fleet throughput over small-fleet: what ~1000 mostly idle
  // connections cost the delivery hot path. Near 1 when the event loop
  // scales; the pass floor is deliberately loose for noisy CI hosts.
  const double throughput_ratio =
      points.back().throughput_per_s / points.front().throughput_per_s;
  const bool scaling_ok = points.front().failures == 0 &&
                          points.back().failures == 0 &&
                          throughput_ratio >= 0.3;
  std::printf("  throughput ratio (%zu conns / %zu conns): %.2f %s "
              "(floor 0.3)\n\n",
              large_fleet, small_fleet, throughput_ratio,
              scaling_ok ? "PASS" : "FAIL");

  const bool pass = codec_ok && scaling_ok;

  // --- JSON -----------------------------------------------------------------
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "net");
  json.Key("frame");
  json.BeginObject();
  json.Field("payload_bytes", payload_bytes);
  json.Field("frames", codec_frames);
  json.Field("encode_mb_s", encode_mb_s);
  json.Field("decode_mb_s", decode_mb_s);
  json.Field("overhead_ratio", overhead_ratio);
  json.EndObject();
  json.Key("delivery");
  json.BeginArray();
  for (const auto& point : points) {
    json.BeginObject();
    json.Field("connections", point.connections);
    json.Field("deliveries", point.deliveries);
    json.Field("failures", point.failures);
    json.Field("wall_ms", point.wall_ms);
    json.Field("throughput_per_s", point.throughput_per_s);
    json.Field("p50_us", point.p50_us);
    json.Field("p99_us", point.p99_us);
    json.EndObject();
  }
  json.EndArray();
  json.Key("scaling");
  json.BeginObject();
  json.Field("throughput_ratio", throughput_ratio);
  json.EndObject();
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return pass ? 0 : 1;
}
