// Observability overhead: what the telemetry layer costs where it runs.
//
// Part 1 — instrument micro-costs. Counter adds, histogram records,
// registry name lookups, and disabled ScopedSpans in nanoseconds per
// operation, measured over tight loops long enough to swamp the clock
// reads. The design bounds the hot-path cost at "one or two relaxed
// atomics"; the acceptance bound allows generous slack for slow CI
// hosts, and the cross-machine gate (bench_compare.py) runs on the
// ratio between instrument costs, which is machine-portable where the
// absolute nanoseconds are not.
//
// Part 2 — end-to-end campaign overhead. The same deployment campaign
// with telemetry fully on (span tracing enabled, a live exporter
// ticking) versus the always-on baseline (counters only, tracing off).
// The measured statistic is process CPU time, not wall time:
// telemetry's cost is CPU (relaxed atomics, clock reads, exporter
// serialization), and CPU time dodges the preemption/steal noise that
// swings wall clocks by +/-10% on shared CI hosts — far more than the
// sub-1% effect being measured. Wall-time medians are still reported,
// ungated, for context.
//
// Even CPU time drifts on a shared host: the effective clock rate
// moves in multi-hundred-ms EPOCHS (DVFS, co-tenant pressure) that
// swing identical campaigns by 20% CPU. Two defenses:
//
//   1. Calibration. Every arm is bracketed by fixed-work spin probes,
//      and the campaign's CPU time is divided by the surrounding
//      probes' — a dimensionless "campaign per unit of machine speed"
//      that cancels whatever rate epoch the rep landed in.
//   2. Paired estimation on the calibrated values: arms run
//      back-to-back with alternating order, each rep contributes one
//      paired overhead sample, and the verdict takes the lower of the
//      paired MEDIAN (robust to outlier reps) and the per-arm FLOOR
//      ratio (noise only inflates CPU, so minima converge on truth).
//      A genuine telemetry regression shifts the whole "on"
//      distribution, floor included, so both estimators move together
//      and the lower one still catches it; only noise splits them.
//
// The bound is <= 2% CPU overhead, the number docs/observability.md
// promises.
//
// Emits BENCH_obs.json for the perf-trajectory tooling.
//
//   bench_obs [--quick] [--out FILE]
#include <ctime>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/deployment_engine.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"

using namespace eric;

namespace {

// Keeps the compiler from hoisting the measured op out of the loop.
volatile uint64_t g_sink = 0;

double NsPerOp(double total_us, size_t ops) {
  return total_us * 1000.0 / static_cast<double>(ops);
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// Process CPU time in milliseconds: the sum over all threads, so
// exporter-thread work counts against the telemetry arm as it should.
double ProcessCpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec * 1e-6;
}

struct CampaignCost {
  double wall_ms = -1.0;
  double cpu_ms = -1.0;
};

// Fixed-work calibration probe: the CPU time this loop takes tracks
// the host's effective clock rate, so dividing a campaign's CPU time
// by the bracketing probes' cancels rate epochs. ~10 ms per probe —
// long enough that timer quantization is < 0.1% of the reading.
double SpinProbeCpuMs() {
  constexpr size_t kIters = 20'000'000;
  const double before = ProcessCpuMs();
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  g_sink = x;
  return ProcessCpuMs() - before;
}

constexpr const char* kCampaignProgram = R"(
  fn main() {
    var sum = 0;
    var i = 1;
    while (i <= 24) { sum = sum + i * i; i = i + 1; }
    return sum;
  }
)";

// One complete campaign over a fresh fleet; returns wall ms. A fresh
// registry/cache per run keeps every repetition doing identical work
// (same compiles, same seals) whichever arm runs first.
CampaignCost RunCampaign(size_t devices, size_t workers) {
  fleet::RegistryConfig config;
  config.key_config.domain = "bench.obs.v1";
  fleet::DeviceRegistry registry(config);
  const fleet::GroupId group = registry.CreateGroup("obs-bench");
  for (size_t i = 0; i < devices; ++i) {
    auto id = registry.Enroll(0x0B5000 + i, group);
    if (!id.ok()) return {};
  }
  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);
  fleet::CampaignConfig campaign;
  campaign.source = kCampaignProgram;
  campaign.policy = core::EncryptionPolicy::PartialRandom(0.5);
  campaign.group = group;
  campaign.workers = workers;
  const double cpu_before = ProcessCpuMs();
  auto report = engine.Run(campaign);
  const double cpu_after = ProcessCpuMs();
  if (!report.ok() || report->succeeded != devices) return {};
  return {report->wall_ms, cpu_after - cpu_before};
}

}  // namespace

int main(int argc, char** argv) {
  size_t micro_ops = 20'000'000;
  size_t devices = 192;
  size_t repetitions = 13;
  const char* out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      micro_ops = 4'000'000;
      devices = 96;
      repetitions = 13;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_obs [--quick] [--out FILE]\n");
      return 2;
    }
  }

  auto& registry = obs::MetricsRegistry::Global();
  auto& collector = obs::TraceCollector::Global();
  collector.Disable();

  // --- Part 1: instrument micro-costs ---------------------------------------
  std::printf("PART 1: instrument micro-costs (%zu ops each)\n", micro_ops);

  auto& counter = registry.GetCounter("bench_obs_counter");
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < micro_ops; ++i) counter.Add(1);
  const double counter_add_ns = NsPerOp(MicrosecondsSince(start), micro_ops);
  g_sink = counter.value();

  auto& histogram = registry.GetHistogram("bench_obs_histogram");
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < micro_ops; ++i) {
    histogram.RecordNanos(i & 0xFFFFF);
  }
  const double record_ns = NsPerOp(MicrosecondsSince(start), micro_ops);
  g_sink = histogram.count();

  // Name lookup is the cold path hot sites avoid (they hold a
  // reference); measured so the "resolve once" advice stays honest.
  const size_t lookup_ops = micro_ops / 10;
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < lookup_ops; ++i) {
    g_sink = g_sink + registry.GetCounter("bench_obs_lookup").value();
  }
  const double lookup_ns = NsPerOp(MicrosecondsSince(start), lookup_ops);

  // A disabled span is the cost every instrumented call site pays when
  // nobody is tracing: one relaxed load, no clock read.
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < micro_ops; ++i) {
    obs::ScopedSpan span("bench_disabled");
    g_sink = g_sink + (span.active() ? 1 : 0);
  }
  const double span_disabled_ns = NsPerOp(MicrosecondsSince(start), micro_ops);

  // An enabled span pays two clock reads and a buffered emit.
  collector.Enable(/*max_spans=*/1u << 16);
  const size_t span_ops = micro_ops / 20;
  {
    obs::TraceScope scope(collector.BeginTrace(), 0);
    start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < span_ops; ++i) {
      obs::ScopedSpan span("bench_enabled");
      g_sink = g_sink + (span.active() ? 1 : 0);
      if ((i & 0x3FF) == 0) (void)collector.Drain();  // keep buffer open
    }
  }
  const double span_enabled_ns = NsPerOp(MicrosecondsSince(start), span_ops);
  (void)collector.Drain();
  collector.Disable();

  // Event append: a slot claim (fetch_add + CAS), a clock read, two
  // bounded copies, a publishing store. Fault paths pay this; it must
  // stay cheap enough to sprinkle on every failure branch.
  obs::EventLog event_log;  // default ring; wrap is part of the cost
  const size_t event_ops = micro_ops / 4;
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < event_ops; ++i) {
    event_log.Emit(obs::EventSeverity::kInfo, "bench",
                   "delivery failed: synthetic benchmark event payload", i, i);
  }
  const double event_append_ns = NsPerOp(MicrosecondsSince(start), event_ops);
  g_sink = event_log.appended();

  // HealthMonitor evaluation: one registry sample plus windowed math
  // for a representative SLO mix (ratio, rate, quantile). This runs
  // once per --slo-interval (default 1 s), so the budget is
  // microseconds, not nanoseconds — measured to keep it honest.
  obs::HealthMonitor monitor;
  registry.GetCounter("bench_obs_health_num");
  registry.GetCounter("bench_obs_health_den").Add(1);
  bool health_ok = true;
  for (const char* spec_text :
       {"ratio(bench_obs_health_num,bench_obs_health_den)<0.5@60s",
        "rate(bench_obs_counter)<1e15@60s",
        "p99(bench_obs_histogram)<1e15@60s"}) {
    auto spec = obs::ParseSloSpec(spec_text);
    if (!spec.ok() || !monitor.AddSlo(*spec).ok()) health_ok = false;
  }
  const size_t eval_ops = std::max<size_t>(micro_ops / 2000, 500);
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < eval_ops; ++i) monitor.EvaluateNow();
  const double health_eval_us = health_ok
      ? MicrosecondsSince(start) / static_cast<double>(eval_ops)
      : -1.0;

  const double record_vs_count_ratio =
      counter_add_ns > 0 ? record_ns / counter_add_ns : 0.0;
  const double event_vs_count_ratio =
      counter_add_ns > 0 ? event_append_ns / counter_add_ns : 0.0;
  const double eval_vs_record_ratio =
      record_ns > 0 ? health_eval_us * 1000.0 / record_ns : 0.0;

  std::printf("  counter add:      %7.1f ns/op\n", counter_add_ns);
  std::printf("  histogram record: %7.1f ns/op (%.1fx a counter add)\n",
              record_ns, record_vs_count_ratio);
  std::printf("  name lookup:      %7.1f ns/op (hot sites cache the ref)\n",
              lookup_ns);
  std::printf("  span (disabled):  %7.1f ns/op\n", span_disabled_ns);
  std::printf("  span (enabled):   %7.1f ns/op\n", span_enabled_ns);
  std::printf("  event append:     %7.1f ns/op (%.1fx a counter add)\n",
              event_append_ns, event_vs_count_ratio);
  std::printf("  health eval:      %7.2f us/op (3 SLOs over a full "
              "registry sample)\n", health_eval_us);

  // Generous absolute bounds: the design cost is single-digit ns on any
  // modern host; triple-digit would mean a lock or allocation crept in.
  // An event append budgets one clock read plus two bounded copies; a
  // health evaluation runs off the hot path once per second, so its
  // bound is a (still generous) fraction of that interval.
  const bool micro_pass = counter_add_ns <= 100.0 && record_ns <= 250.0 &&
                          span_disabled_ns <= 100.0 &&
                          event_append_ns <= 1000.0 && health_ok &&
                          health_eval_us <= 5000.0;
  std::printf("  micro-cost bound: %s (counter <= 100 ns, record <= 250 ns, "
              "disabled span <= 100 ns, event <= 1000 ns, "
              "health eval <= 5 ms)\n\n",
              micro_pass ? "PASS" : "FAIL");

  // --- Part 2: campaign overhead with telemetry fully on --------------------
  std::printf("PART 2: campaign overhead, telemetry on vs off "
              "(%zu devices, %zu interleaved runs)\n", devices, repetitions);

  const std::string snapshot_path = std::string(out_path) + ".live";
  std::vector<double> baseline_wall_ms, telemetry_wall_ms;
  std::vector<double> baseline_cpu_ms, telemetry_cpu_ms;
  std::vector<double> baseline_cal, telemetry_cal, paired_overhead_pct;
  bool campaigns_ok = true;
  // Warm-up: first-run artifacts (page cache, lazy inits) land on
  // neither arm.
  (void)RunCampaign(devices, 1);

  // The telemetry arm's CPU window covers Enable -> Stop so the
  // exporter thread's serialization work (a genuine telemetry cost) is
  // charged to this arm alongside the instrumented campaign itself.
  const auto run_with_telemetry = [&]() -> CampaignCost {
    const double cpu_before = ProcessCpuMs();
    collector.Enable();
    obs::MetricsExporter exporter;
    obs::MetricsExporter::Options options;
    options.json_path = snapshot_path;
    options.interval_seconds = 0.1;
    if (!exporter.Start(options).ok()) return {};
    CampaignCost cost = RunCampaign(devices, 1);
    exporter.Stop();
    (void)collector.Drain();
    collector.Disable();
    cost.cpu_ms = ProcessCpuMs() - cpu_before;
    return cost;
  };
  const auto run_baseline = [&]() -> CampaignCost {
    const double cpu_before = ProcessCpuMs();
    CampaignCost cost = RunCampaign(devices, 1);
    cost.cpu_ms = ProcessCpuMs() - cpu_before;
    return cost;
  };

  for (size_t rep = 0; rep < repetitions && campaigns_ok; ++rep) {
    // Alternate which arm runs first so slow drift cancels in the
    // pair; bracket every arm with spin probes and calibrate each
    // arm's CPU time by the mean of its surrounding probes.
    CampaignCost off, on;
    double off_probe, on_probe;
    const double p1 = SpinProbeCpuMs();
    if (rep % 2 == 0) {
      off = run_baseline();
      const double p2 = SpinProbeCpuMs();
      on = run_with_telemetry();
      const double p3 = SpinProbeCpuMs();
      off_probe = (p1 + p2) / 2;
      on_probe = (p2 + p3) / 2;
    } else {
      on = run_with_telemetry();
      const double p2 = SpinProbeCpuMs();
      off = run_baseline();
      const double p3 = SpinProbeCpuMs();
      on_probe = (p1 + p2) / 2;
      off_probe = (p2 + p3) / 2;
    }
    if (off.wall_ms < 0 || on.wall_ms < 0) {
      campaigns_ok = false;
      break;
    }
    baseline_wall_ms.push_back(off.wall_ms);
    telemetry_wall_ms.push_back(on.wall_ms);
    baseline_cpu_ms.push_back(off.cpu_ms);
    telemetry_cpu_ms.push_back(on.cpu_ms);
    const double off_norm = off.cpu_ms / off_probe;
    const double on_norm = on.cpu_ms / on_probe;
    baseline_cal.push_back(off_norm);
    telemetry_cal.push_back(on_norm);
    paired_overhead_pct.push_back((on_norm - off_norm) / off_norm * 100.0);
    std::printf(
        "  run %zu: off %7.2f ms cpu (%7.2f wall), on %7.2f ms cpu "
        "(%7.2f wall) -> %+.2f%% calibrated\n",
        rep, off.cpu_ms, off.wall_ms, on.cpu_ms, on.wall_ms,
        paired_overhead_pct.back());
  }
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".prom").c_str());
  if (!campaigns_ok) {
    std::fprintf(stderr, "campaign run failed\n");
    return 1;
  }

  const double off_wall_median = Median(baseline_wall_ms);
  const double on_wall_median = Median(telemetry_wall_ms);
  const double off_cpu_median = Median(baseline_cpu_ms);
  const double on_cpu_median = Median(telemetry_cpu_ms);
  const double off_cal_min =
      *std::min_element(baseline_cal.begin(), baseline_cal.end());
  const double on_cal_min =
      *std::min_element(telemetry_cal.begin(), telemetry_cal.end());
  // <= 2% is the documented promise. Two estimators, verdict on the
  // lower (see the header comment for why that is sound for a
  // one-sided bound under inflationary noise).
  const double paired_median_pct = Median(paired_overhead_pct);
  const double min_ratio_pct = (on_cal_min - off_cal_min) / off_cal_min * 100.0;
  const double overhead_pct = std::min(paired_median_pct, min_ratio_pct);
  const bool overhead_pass = overhead_pct <= 2.0;
  std::printf("  medians: off %.2f ms cpu (%.2f wall), on %.2f ms cpu "
              "(%.2f wall)\n",
              off_cpu_median, off_wall_median, on_cpu_median, on_wall_median);
  std::printf("  paired median %+.2f%%, floor ratio %+.2f%% -> "
              "%+.2f%% cpu overhead %s (bound: <= 2%%)\n\n",
              paired_median_pct, min_ratio_pct, overhead_pct,
              overhead_pass ? "PASS" : "FAIL");

  // --- JSON -----------------------------------------------------------------
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "obs");
  json.Field("micro_ops", micro_ops);
  json.Key("instruments");
  json.BeginObject();
  json.Field("counter_add_ns", counter_add_ns);
  json.Field("histogram_record_ns", record_ns);
  json.Field("registry_lookup_ns", lookup_ns);
  json.Field("span_disabled_ns", span_disabled_ns);
  json.Field("span_enabled_ns", span_enabled_ns);
  json.Field("event_append_ns", event_append_ns);
  json.Field("record_vs_count_ratio", record_vs_count_ratio);
  json.Field("event_vs_count_ratio", event_vs_count_ratio);
  json.EndObject();
  json.Key("health");
  json.BeginObject();
  json.Field("slos", static_cast<uint64_t>(3));
  json.Field("evaluations", eval_ops);
  json.Field("eval_us", health_eval_us);
  json.Field("eval_vs_record_ratio", eval_vs_record_ratio);
  json.EndObject();
  json.Key("campaign");
  json.BeginObject();
  json.Field("devices", devices);
  json.Field("repetitions", repetitions);
  json.Field("baseline_median_wall_ms", off_wall_median);
  json.Field("telemetry_median_wall_ms", on_wall_median);
  json.Field("baseline_median_cpu_ms", off_cpu_median);
  json.Field("telemetry_median_cpu_ms", on_cpu_median);
  json.Field("paired_median_pct", paired_median_pct);
  json.Field("floor_ratio_pct", min_ratio_pct);
  json.Field("cpu_overhead_pct", overhead_pct);
  json.EndObject();
  json.Field("pass", micro_pass && overhead_pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return micro_pass && overhead_pass ? 0 : 1;
}
