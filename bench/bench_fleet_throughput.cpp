// Fleet throughput: the encrypt-once package cache vs naive per-device
// recompilation, and campaign scaling with worker count.
//
// Part 1 — seal-path throughput. The naive fleet loop (what the seed's
// fleet_deployment example did) re-runs compile + sign + encrypt +
// package for every device. With group keys the sealed artifact is
// byte-identical across the group, so the PackageCache does that work
// once and serves the rest from memory. Measured over a 1000-device
// single-group campaign; acceptance floor is 5x, expectation is orders
// of magnitude.
//
// Part 2 — worker scaling. Campaign wall time with 1/2/4/8 workers over
// a channel with simulated per-delivery transport latency. Workers
// overlap the wire waits (and, on multi-core hosts, the per-device HDE
// work), so wall time drops as workers rise even on a single core.
//
// Emits BENCH_fleet.json for the perf-trajectory tooling.
//
//   bench_fleet_throughput [--quick] [--devices N] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/software_source.h"
#include "fleet/deployment_engine.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"
#include "workloads/workloads.h"

using namespace eric;

int main(int argc, char** argv) {
  size_t devices = 1000;
  size_t scaling_devices = 128;
  const char* out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      devices = 200;
      scaling_devices = 48;
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      devices = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet_throughput [--quick] [--devices N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  const auto* workload = workloads::FindWorkload("crc32");
  if (workload == nullptr) workload = &workloads::AllWorkloads().front();
  const auto policy = core::EncryptionPolicy::PartialRandom(0.5);

  // --- Enrollment -----------------------------------------------------------
  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "bench.fleet.v1";
  fleet::DeviceRegistry registry(registry_config);
  const fleet::GroupId group = registry.CreateGroup("bench-fleet");

  std::printf("enrolling %zu devices into one group...\n", devices);
  const auto enroll_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < devices; ++i) {
    auto id = registry.Enroll(0xBE9C000 + i, group);
    if (!id.ok()) {
      std::fprintf(stderr, "enroll failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  const double enroll_ms = MillisecondsSince(enroll_start);
  std::printf("enrolled in %.1f ms (%.0f devices/s)\n\n", enroll_ms,
              devices / (enroll_ms / 1000.0));

  auto group_key = registry.GroupKey(group);
  if (!group_key.ok()) return 1;

  // --- Part 1: naive per-device recompilation vs encrypt-once cache --------
  std::printf("PART 1: seal-path throughput, %zu-device single-group "
              "campaign\n", devices);

  const auto naive_start = std::chrono::steady_clock::now();
  size_t naive_bytes = 0;
  core::SoftwareSource naive_source(*group_key, registry.key_config());
  for (size_t i = 0; i < devices; ++i) {
    auto built = naive_source.CompileAndPackage(workload->source, policy);
    if (!built.ok()) {
      std::fprintf(stderr, "naive build failed\n");
      return 1;
    }
    naive_bytes += pkg::Serialize(built->packaging.package).size();
  }
  const double naive_ms = MillisecondsSince(naive_start);

  fleet::PackageCache cache;
  const auto cached_start = std::chrono::steady_clock::now();
  size_t cached_bytes = 0;
  for (size_t i = 0; i < devices; ++i) {
    auto artifact = cache.GetOrBuild(workload->source, *group_key,
                                     registry.key_config(), policy);
    if (!artifact.ok()) {
      std::fprintf(stderr, "cached build failed\n");
      return 1;
    }
    cached_bytes += (*artifact)->wire.size();
  }
  const double cached_ms = MillisecondsSince(cached_start);
  const double speedup = naive_ms / cached_ms;
  const auto cache_stats = cache.Stats();

  std::printf("  naive:  %10.1f ms  (%.0f pkg/s, %zu bytes sealed)\n",
              naive_ms, devices / (naive_ms / 1000.0), naive_bytes);
  std::printf("  cached: %10.1f ms  (%.0f pkg/s, %llu hits / %llu misses)\n",
              cached_ms, devices / (cached_ms / 1000.0),
              static_cast<unsigned long long>(cache_stats.artifact_hits),
              static_cast<unsigned long long>(cache_stats.artifact_misses));
  std::printf("  speedup: %.1fx %s (acceptance floor: 5x)\n\n", speedup,
              speedup >= 5.0 ? "PASS" : "FAIL");

  // --- Part 2: worker scaling over a latency-bearing channel ----------------
  // A small program keeps per-device simulator time low so the bench
  // isolates what workers actually overlap on any host: transport latency
  // (plus HDE/exec work on multi-core machines).
  const char* scaling_source = R"(
    fn main() {
      var sum = 0;
      var i = 1;
      while (i <= 32) { sum = sum + i * i; i = i + 1; }
      return sum;
    }
  )";
  constexpr uint32_t kLatencyUs = 5000;
  std::printf("PART 2: campaign wall time vs workers (%zu devices, %u ms "
              "delivery latency)\n", scaling_devices, kLatencyUs / 1000);

  fleet::RegistryConfig scaling_registry_config;
  scaling_registry_config.key_config.domain = "bench.fleet.scaling";
  fleet::DeviceRegistry scaling_registry(scaling_registry_config);
  const fleet::GroupId scaling_group = scaling_registry.CreateGroup("scaling");
  for (size_t i = 0; i < scaling_devices; ++i) {
    auto id = scaling_registry.Enroll(0x5CA11000 + i, scaling_group);
    if (!id.ok()) return 1;
  }
  fleet::PackageCache scaling_cache;
  fleet::DeploymentEngine engine(scaling_registry, scaling_cache);

  struct ScalingPoint {
    size_t workers;
    double wall_ms;
    double devices_per_second;
  };
  std::vector<ScalingPoint> scaling;
  double single_worker_ms = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    fleet::CampaignConfig campaign;
    campaign.source = scaling_source;
    campaign.policy = policy;
    campaign.group = scaling_group;
    campaign.workers = workers;
    campaign.delivery_latency_us = kLatencyUs;
    campaign.campaign_seed = 0xBE9C + workers;
    auto report = engine.Run(campaign);
    if (!report.ok() || report->succeeded != scaling_devices) {
      std::fprintf(stderr, "scaling campaign failed (workers=%zu)\n",
                   workers);
      return 1;
    }
    if (workers == 1) single_worker_ms = report->wall_ms;
    scaling.push_back({workers, report->wall_ms, report->devices_per_second});
    std::printf("  workers=%zu  wall %8.1f ms  %7.0f devices/s  (%.2fx)\n",
                workers, report->wall_ms, report->devices_per_second,
                single_worker_ms / report->wall_ms);
  }
  const double scaling_factor = single_worker_ms / scaling.back().wall_ms;
  std::printf("  8-worker speedup over 1 worker: %.2fx %s\n\n",
              scaling_factor, scaling_factor > 1.5 ? "PASS" : "FAIL");

  // --- JSON -----------------------------------------------------------------
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "fleet_throughput");
  json.Field("workload", workload->name);
  json.Field("policy", "partial-0.5");
  json.Field("devices", devices);
  json.Field("enroll_ms", enroll_ms);
  json.Key("seal_path");
  json.BeginObject();
  json.Field("naive_ms", naive_ms);
  json.Field("cached_ms", cached_ms);
  json.Field("speedup", speedup);
  json.Field("artifact_hits", cache_stats.artifact_hits);
  json.Field("artifact_misses", cache_stats.artifact_misses);
  json.Field("compile_misses", cache_stats.compile_misses);
  json.EndObject();
  json.Key("scaling");
  json.BeginArray();
  for (const auto& point : scaling) {
    json.BeginObject();
    json.Field("workers", point.workers);
    json.Field("wall_ms", point.wall_ms);
    json.Field("devices_per_second", point.devices_per_second);
    json.EndObject();
  }
  json.EndArray();
  json.Field("scaling_devices", scaling_devices);
  json.Field("delivery_latency_us", kLatencyUs);
  json.Field("pass", speedup >= 5.0 && scaling_factor > 1.5);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return (speedup >= 5.0 && scaling_factor > 1.5) ? 0 : 1;
}
