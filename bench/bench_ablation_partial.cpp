// Partial-encryption ablation: sweep the encrypted-instruction fraction
// and chart the security/size/latency trade-off the paper's partial mode
// exposes (Sec. III.1: "the programmer can protect the critical parts of
// the program").
#include <cstdio>

#include "analysis/attack_harness.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "workloads/workloads.h"

using namespace eric;

int main() {
  crypto::KeyConfig config;
  core::TrustedDevice device(0xAB2, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto* w = workloads::FindWorkload("dijkstra");

  std::printf("Partial-encryption sweep on '%s'\n", w->name.c_str());
  std::printf("%9s %11s %12s %13s %13s\n", "fraction", "size(+%)",
              "hde(cyc)", "disasm-ok(%)", "trace-leak(%)");

  for (const double fraction :
       {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const auto policy =
        fraction == 0.0
            ? core::EncryptionPolicy::None()
            : (fraction == 1.0 ? core::EncryptionPolicy::Full()
                               : core::EncryptionPolicy::PartialRandom(fraction));
    auto built = source.CompileAndPackage(w->source, policy);
    if (!built.ok()) return 1;
    auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
    if (!run.ok()) return 1;

    const double plain_size =
        static_cast<double>(built->compile.program.image.size());
    const double pkg_size =
        static_cast<double>(built->packaging.package.WireSize());
    const auto report = analysis::RunAttackPlaybook(
        built->compile.program, built->packaging.package);

    std::printf("%9.2f %+10.2f%% %12llu %13.1f %13.1f\n", fraction,
                100.0 * (pkg_size - plain_size) / plain_size,
                static_cast<unsigned long long>(run->hde_cycles.total()),
                100.0 * report.disasm_valid_fraction,
                100.0 * report.memory_trace_agreement);
  }
  std::printf("\nSecurity rises with the encrypted fraction; package size "
              "overhead is\nflat (map is 1 bit/instruction regardless of "
              "fraction) and HDE cycles\ngrow with the bytes actually "
              "decrypted.\n");
  return 0;
}
