// Fig 1 companion: arbiter-PUF characterization. The paper's Fig 1 shows
// the challenge/response scheme; this bench demonstrates the modeled PUF
// behaves like real silicon — per-device unique responses, ~50 %
// uniformity/uniqueness, high reliability — and shows a 5-bit example
// response pattern like the figure's.
#include <cstdio>

#include "puf/arbiter_puf.h"
#include "puf/puf_key_generator.h"
#include "puf/puf_metrics.h"

using namespace eric::puf;

int main() {
  // The figure's 5-bit challenge / 1-bit response example.
  std::printf("FIG 1: 5-bit challenge -> 1-bit response (3 devices)\n");
  std::printf("challenge   device0 device1 device2\n");
  ArbiterPuf devices[3] = {ArbiterPuf(5, 101, 0), ArbiterPuf(5, 102, 0),
                           ArbiterPuf(5, 103, 0)};
  for (uint64_t challenge = 0; challenge < 8; ++challenge) {
    std::printf("  %02llu        %d       %d       %d\n",
                static_cast<unsigned long long>(challenge),
                devices[0].EvaluateIdeal(challenge) ? 1 : 0,
                devices[1].EvaluateIdeal(challenge) ? 1 : 0,
                devices[2].EvaluateIdeal(challenge) ? 1 : 0);
  }

  // Population study at the paper's 8-bit challenge configuration.
  PufStudyConfig config;
  config.devices = 64;
  config.challenges = 128;
  config.remeasurements = 21;
  const PufQualityReport report = CharacterizeArbiterPuf(config);
  std::printf("\nArbiter PUF population study (%d devices, %d challenges, "
              "%d re-reads)\n",
              report.devices, report.challenges, report.remeasurements);
  std::printf("  uniformity    %6.2f %%   (ideal 50)\n",
              report.uniformity_percent);
  std::printf("  uniqueness    %6.2f %%   (ideal 50)\n",
              report.uniqueness_percent);
  std::printf("  reliability   %6.2f %%   (ideal 100)\n",
              report.reliability_percent);
  std::printf("  worst aliasing%6.2f %%   (ideal 50)\n",
              report.bit_aliasing_worst_percent);

  // Key generation path: fuzzy-extractor stability across power-ups.
  PufKeyGenerator pkg(2026);
  eric::Xoshiro256 enroll_rng(1);
  const auto enrollment = pkg.Enroll(enroll_rng);
  int stable = 0;
  constexpr int kPowerUps = 20;
  for (int i = 0; i < kPowerUps; ++i) {
    eric::Xoshiro256 rng(100 + static_cast<uint64_t>(i));
    stable += pkg.RegenerateKey(enrollment.helper, rng) == enrollment.key;
  }
  std::printf("\nPUF Key Generator: %d/%d power-ups regenerated the exact "
              "256-bit key\n",
              stable, kPowerUps);
  return stable == kPowerUps ? 0 : 1;
}
