// Scaling ablation: "ERIC is suitable for compiling from a single software
// source for multiple target hardware... ERIC does not have a scaling
// problem for multiple targets or sources" (Sec. III.1).
//
// Compares provisioning a fleet of N devices two ways:
//   per-device keys  -> N compiles + N packages
//   one group key    -> 1 compile + 1 package
// and reports vendor-side wall time per fleet size.
#include <chrono>
#include <cstdio>

#include "core/encryption_policy.h"
#include "core/group_key.h"
#include "core/software_source.h"
#include "workloads/workloads.h"

using namespace eric;
using Clock = std::chrono::steady_clock;

namespace {

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  crypto::KeyConfig config;
  const auto* w = workloads::FindWorkload("crc32");
  const int64_t expected = w->reference();

  std::printf("Fleet scaling: vendor-side compile+sign+encrypt+package time\n"
              "to provision N devices (device-side cost is identical per\n"
              "device in both schemes and excluded)\n");
  std::printf("%6s %18s %18s %9s\n", "N", "per-device (ms)", "group key (ms)",
              "speedup");

  for (const int n : {1, 2, 4, 8, 16, 32}) {
    std::vector<uint64_t> seeds;
    for (int i = 0; i < n; ++i) {
      seeds.push_back(0x5CA1E000 + static_cast<uint64_t>(n) * 100 +
                      static_cast<uint64_t>(i));
    }

    // Per-device keys: one compile+package per device; validate on one
    // sample device per scheme to keep the result honest.
    std::vector<std::unique_ptr<core::TrustedDevice>> devices;
    std::vector<crypto::Key256> keys;
    for (uint64_t seed : seeds) {
      devices.push_back(std::make_unique<core::TrustedDevice>(seed, config));
      keys.push_back(devices.back()->Enroll());
    }
    double per_device_ms = 0.0;
    {
      const auto start = Clock::now();
      std::vector<std::vector<uint8_t>> wires;
      for (int i = 0; i < n; ++i) {
        core::SoftwareSource source(keys[static_cast<size_t>(i)], config);
        auto built = source.CompileAndPackage(
            w->source, core::EncryptionPolicy::Full());
        if (!built.ok()) return 1;
        wires.push_back(pkg::Serialize(built->packaging.package));
      }
      per_device_ms = MillisSince(start);
      auto run = devices[0]->ReceiveAndRun(wires[0]);
      if (!run.ok() || run->exec.exit_code != expected) return 1;
    }

    // Group key: provision once, compile once.
    auto group = core::DeviceGroup::Provision(seeds, config);
    if (!group.ok()) return 1;
    double group_ms = 0.0;
    {
      const auto start = Clock::now();
      core::SoftwareSource source(group->group_key(), config);
      auto built = source.CompileAndPackage(w->source,
                                            core::EncryptionPolicy::Full());
      if (!built.ok()) return 1;
      const auto wire = pkg::Serialize(built->packaging.package);
      group_ms = MillisSince(start);
      auto run = group->RunOnMember(0, wire);
      if (!run.ok() || run->exec.exit_code != expected) return 1;
    }

    std::printf("%6d %18.3f %18.3f %8.2fx\n", n, per_device_ms, group_ms,
                per_device_ms / group_ms);
  }
  std::printf("\nGroup keys amortize the vendor-side work to one compile per\n"
              "fleet (speedup ~N); per-device keys scale linearly. This is\n"
              "the paper's 'no scaling problem for multiple targets' claim.\n");
  return 0;
}
