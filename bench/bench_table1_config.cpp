// Table I: test environment. Prints the reproduced configuration next to
// the paper's, so every experiment binary's context is explicit.
#include <cstdio>

#include "core/hde.h"
#include "puf/puf_key_generator.h"
#include "sim/soc.h"
#include "workloads/workloads.h"

int main() {
  const eric::puf::PkgConfig pkg_config;
  const eric::sim::CpuTiming timing;

  std::printf("TABLE I: Test Environment (paper -> this reproduction)\n");
  std::printf("%-22s %-34s %s\n", "Parameter", "Paper", "Reproduction");
  std::printf("%-22s %-34s %s\n", "Platform", "Xilinx Zedboard FPGA",
              "cycle-approximate C++ SoC model");
  std::printf("%-22s %-34s 32x %d-bit challenge, 1-bit response\n",
              "PUF", "Arbiter, 32x 8-bit chal / 1-bit resp",
              pkg_config.challenge_bits);
  std::printf("%-22s %-34s %s\n", "Signature Function", "SHA-256",
              "SHA-256 (from scratch, FIPS 180-2)");
  std::printf("%-22s %-34s %s\n", "Encryption Function", "XOR Cipher",
              "XOR cipher, SHA-256 counter keystream");
  std::printf("%-22s %-34s %s\n", "SoC", "Rocket Chip (in-order 6-stage)",
              "in-order RV64IMAC timing model");
  std::printf("%-22s %-34s %.0f MHz (modeled)\n", "Test Frequency", "25 MHz",
              eric::sim::kClockHz / 1e6);
  std::printf("%-22s %-34s %s\n", "Target ISA", "RV64GC",
              "RV64IMAC (integer+atomics subset of GC)");
  std::printf("%-22s %-34s %u KiB, %u-way, set-associative\n",
              "L1 Data Cache", "16KiB, 4-way, set-associative",
              timing.dcache.size_bytes / 1024, timing.dcache.ways);
  std::printf("%-22s %-34s %u KiB, %u-way, set-associative\n",
              "L1 Instruction Cache", "16KiB, 4-way, set-associative",
              timing.icache.size_bytes / 1024, timing.icache.ways);
  std::printf("%-22s %-34s %s\n", "Register File", "31 entries, 64-bit",
              "31 entries, 64-bit (x1..x31)");
  std::printf("%-22s %-34s %zu MiBench-style kernels\n", "Benchmarks",
              "MiBench (LLVM/RISC-V subset)",
              eric::workloads::AllWorkloads().size());
  return 0;
}
