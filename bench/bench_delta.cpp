// Delta-package economics: what patch deployment saves on the wire, and
// what patching costs against a cold seal.
//
// The deploy path's dominant fleet-scale cost for a small program change
// is re-shipping the full sealed image to every device. This bench pins
// the delta pipeline's numbers on a release pair that differs by one
// loop bound (a fraction of a percent of the instructions — the "small
// (<=5%) mutation" the pipeline exists for), plus an append-heavy pair
// (a whole new stage function) whose delta is several times bigger —
// reported, not gated, to keep the codec's worst direction visible.
//
// Headline metrics (deterministic, machine-portable, gated in CI):
//
//   wire.delta_vs_full_ratio   encoded delta bytes / full package bytes
//                              for the small mutation; acceptance <= 0.35.
//   campaign.bytes_ratio       bytes shipped by the delta campaign /
//                              what the same deliveries would have cost
//                              as full packages (equal to the wire ratio
//                              when every target patches).
//   campaign.delta_fraction    deliveries that went out as deltas.
//
// patch.vs_cold_seal_ratio (device-side ApplyDelta vs compile+seal from
// a cold cache) is wall-time based — reported for the README story, not
// gated.
//
//   bench_delta [--quick] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/deployment_engine.h"
#include "pkg/delta.h"
#include "support/bench_json.h"
#include "support/stopwatch.h"
#include "workloads/workloads.h"

using namespace eric;

int main(int argc, char** argv) {
  size_t devices = 32, workers = 4;
  const char* out_path = "BENCH_delta.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      devices = 8;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_delta [--quick] [--out FILE]\n");
      return 2;
    }
  }

  // The shared synthetic release pair: one loop bound apart (small
  // mutation), plus the append-heavy variant.
  const std::string v1 = workloads::MakeSyntheticRelease(3);
  const std::string v2 = workloads::MakeSyntheticRelease(5);
  const std::string v2_append = workloads::MakeSyntheticRelease(3, true);

  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "bench.delta.v1";
  fleet::DeviceRegistry registry(registry_config);
  const fleet::GroupId group = registry.CreateGroup("delta");
  std::vector<fleet::DeviceId> targets;
  for (size_t d = 0; d < devices; ++d) {
    auto id = registry.Enroll(0xDE17AB00 + d, group);
    if (!id.ok()) {
      std::fprintf(stderr, "enroll failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    targets.push_back(*id);
  }

  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);

  fleet::CampaignConfig campaign;
  campaign.source = v1;
  campaign.devices = targets;
  campaign.workers = workers;

  // Release v1 lands everywhere (cold: one compile, one seal).
  auto first = engine.Run(campaign);
  if (!first.ok() || first->succeeded != devices) {
    std::fprintf(stderr, "v1 campaign failed\n");
    return 1;
  }

  // The v2 delta campaign: every manifest matches, every target patches.
  fleet::CampaignConfig update = campaign;
  update.source = v2;
  update.delta = true;
  update.delta_base_source = v1;
  auto second = engine.Run(update);
  if (!second.ok() || second->succeeded != devices) {
    std::fprintf(stderr, "v2 delta campaign failed\n");
    return 1;
  }
  const double campaign_bytes_ratio =
      second->bytes_full_equivalent == 0
          ? 0.0
          : static_cast<double>(second->bytes_shipped) /
                static_cast<double>(second->bytes_full_equivalent);
  const double delta_fraction =
      second->deliveries == 0
          ? 0.0
          : static_cast<double>(second->delta_deliveries) /
                static_cast<double>(second->deliveries);

  // Codec-level numbers on the group key's sealed wires.
  auto sealing = registry.SealingContextFor(targets.front());
  if (!sealing.ok()) return 1;
  auto v1_artifact = cache.GetOrBuild(v1, sealing->key, sealing->config,
                                      campaign.policy);
  auto v2_artifact = cache.GetOrBuild(v2, sealing->key, sealing->config,
                                      campaign.policy);
  auto append_artifact = cache.GetOrBuild(v2_append, sealing->key,
                                          sealing->config, campaign.policy);
  if (!v1_artifact.ok() || !v2_artifact.ok() || !append_artifact.ok()) {
    return 1;
  }
  pkg::DeltaStats small_stats;
  const auto small_delta = pkg::EncodeDelta((*v1_artifact)->wire,
                                            (*v2_artifact)->wire,
                                            &small_stats);
  const double wire_ratio =
      static_cast<double>(small_delta.size()) /
      static_cast<double>((*v2_artifact)->wire.size());
  const auto append_delta = pkg::EncodeDelta((*v1_artifact)->wire,
                                             (*append_artifact)->wire);
  const double append_ratio =
      static_cast<double>(append_delta.size()) /
      static_cast<double>((*append_artifact)->wire.size());

  // Patch cost vs a cold seal: device-side ApplyDelta against the Fig 6
  // pipeline run from an empty cache.
  constexpr int kPatchIters = 200;
  const auto patch_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPatchIters; ++i) {
    auto applied = pkg::ApplyDelta((*v1_artifact)->wire, small_delta);
    if (!applied.ok() || applied->size() != (*v2_artifact)->wire.size()) {
      std::fprintf(stderr, "patch round-trip failed\n");
      return 1;
    }
  }
  const double apply_us = MicrosecondsSince(patch_start) / kPatchIters;
  const auto seal_start = std::chrono::steady_clock::now();
  fleet::PackageCache cold_cache;
  auto cold = cold_cache.GetOrBuild(v2, sealing->key, sealing->config,
                                    campaign.policy);
  if (!cold.ok()) return 1;
  const double cold_seal_us = MicrosecondsSince(seal_start);
  const double patch_vs_cold =
      cold_seal_us == 0 ? 0.0 : apply_us / cold_seal_us;

  const bool pass = wire_ratio <= 0.35 && campaign_bytes_ratio <= 0.35 &&
                    second->delta_deliveries == devices &&
                    second->delta_fallbacks == 0 &&
                    second->succeeded == devices;

  std::printf("fleet: %zu devices, full package %zu bytes\n", devices,
              (*v2_artifact)->wire.size());
  std::printf("small mutation: delta %zu bytes (%.3fx full; %llu copy / "
              "%llu literal bytes)\n",
              small_delta.size(), wire_ratio,
              static_cast<unsigned long long>(small_stats.copy_bytes),
              static_cast<unsigned long long>(small_stats.literal_bytes));
  std::printf("append mutation: delta %zu bytes (%.3fx full — the "
              "worst-direction reference)\n",
              append_delta.size(), append_ratio);
  std::printf("campaign: %llu deltas / %llu full, %llu of %llu bytes "
              "shipped (%.3fx)\n",
              static_cast<unsigned long long>(second->delta_deliveries),
              static_cast<unsigned long long>(second->full_deliveries),
              static_cast<unsigned long long>(second->bytes_shipped),
              static_cast<unsigned long long>(second->bytes_full_equivalent),
              campaign_bytes_ratio);
  std::printf("patch: %.1f us apply vs %.1f us cold compile+seal "
              "(%.3fx)\n", apply_us, cold_seal_us, patch_vs_cold);
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "delta");
  json.Field("devices", devices);
  json.Key("wire");
  json.BeginObject();
  json.Field("full_bytes", (*v2_artifact)->wire.size());
  json.Field("delta_bytes", small_delta.size());
  json.Field("delta_vs_full_ratio", wire_ratio);
  json.Field("copy_bytes", small_stats.copy_bytes);
  json.Field("literal_bytes", small_stats.literal_bytes);
  json.EndObject();
  json.Key("campaign");
  json.BeginObject();
  json.Field("delta_deliveries", second->delta_deliveries);
  json.Field("full_deliveries", second->full_deliveries);
  json.Field("delta_fallbacks", second->delta_fallbacks);
  json.Field("bytes_shipped", second->bytes_shipped);
  json.Field("bytes_full_equivalent", second->bytes_full_equivalent);
  json.Field("bytes_ratio", campaign_bytes_ratio);
  json.Field("delta_fraction", delta_fraction);
  json.EndObject();
  json.Key("append_mutation");
  json.BeginObject();
  json.Field("delta_bytes", append_delta.size());
  json.Field("delta_vs_full_ratio", append_ratio);
  json.EndObject();
  json.Key("patch");
  json.BeginObject();
  json.Field("apply_us", apply_us);
  json.Field("cold_seal_us", cold_seal_us);
  json.Field("vs_cold_seal_ratio", patch_vs_cold);
  json.EndObject();
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
