// Security evaluation: the full attacker playbook (static disassembly,
// entropy, opcode-mix, memory-trace extraction, foreign-device execution)
// against each encryption mode, plus the transit-fault sweep.
#include <cstdio>

#include "analysis/attack_harness.h"
#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "net/channel.h"
#include "workloads/workloads.h"

using namespace eric;

int main() {
  crypto::KeyConfig config;
  core::TrustedDevice device(0x5EC, config);
  core::SoftwareSource source(device.Enroll(), config);
  const auto* w = workloads::FindWorkload("sha");

  struct Case {
    const char* label;
    core::EncryptionPolicy policy;
    compiler::CompileOptions options;
  };
  compiler::CompileOptions wide;
  wide.compress = false;  // field mode pairs with uncompressed code
  const Case cases[] = {
      {"plaintext (signed only)", core::EncryptionPolicy::None(), {}},
      {"full encryption", core::EncryptionPolicy::Full(), {}},
      {"partial 50% random", core::EncryptionPolicy::PartialRandom(0.5), {}},
      {"field-level (pointers)", core::EncryptionPolicy::FieldLevelPointers(),
       wide},
  };

  std::printf("Attack playbook against '%s' packages\n\n", w->name.c_str());
  for (const Case& c : cases) {
    auto built = source.CompileAndPackage(w->source, c.policy, c.options);
    if (!built.ok()) {
      std::printf("%s: build failed: %s\n", c.label,
                  built.status().ToString().c_str());
      return 1;
    }
    const auto report = analysis::RunAttackPlaybook(
        built->compile.program, built->packaging.package);
    std::printf("[%s]\n%s\n", c.label, report.Format().c_str());
  }

  // Transit-fault sweep: count detection across fault classes.
  std::printf("Transit-fault sweep (partial 50%% package, 25 trials per "
              "fault):\n");
  auto built = source.CompileAndPackage(
      w->source, core::EncryptionPolicy::PartialRandom(0.5));
  if (!built.ok()) return 1;
  const auto wire = pkg::Serialize(built->packaging.package);
  const int64_t expected = w->reference();
  for (const auto fault :
       {net::ChannelFault::kRandomBitFlips, net::ChannelFault::kBytePatch,
        net::ChannelFault::kInstructionPatch, net::ChannelFault::kTruncate,
        net::ChannelFault::kDuplicate}) {
    int rejected = 0, misexecuted = 0;
    for (uint64_t trial = 0; trial < 25; ++trial) {
      net::ChannelConfig cfg;
      cfg.fault = fault;
      cfg.seed = trial;
      cfg.patch_offset = 36 + trial * 11;
      cfg.bit_flips = 1 + static_cast<uint32_t>(trial % 3);
      net::Channel channel(cfg);
      auto run = device.ReceiveAndRun(channel.Deliver(wire));
      if (!run.ok()) {
        ++rejected;
      } else if (run->exec.exit_code != expected) {
        ++misexecuted;
      }
    }
    std::printf("  %-18s rejected %2d/25, misexecuted %d/25\n",
                std::string(net::ChannelFaultName(fault)).c_str(), rejected,
                misexecuted);
  }
  std::printf("\nEvery mutated delivery must be rejected; misexecuted must "
              "be 0.\n");
  return 0;
}
