// Microbenchmarks of the crypto substrate (google-benchmark): SHA-256,
// XOR-cipher keystream, AES-128 CTR, and the KDF — the primitives whose
// cost shapes Figs 6/7.
#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/aes128.h"
#include "crypto/kdf.h"
#include "crypto/sha256.h"
#include "crypto/xor_cipher.h"
#include "support/rng.h"

namespace {

using namespace eric;
using namespace eric::crypto;

std::vector<uint8_t> MakeData(size_t size) {
  Xoshiro256 rng(7);
  std::vector<uint8_t> data(size);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

Key256 MakeKey() {
  Key256 key;
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

void BM_Sha256(benchmark::State& state) {
  const auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_XorCipher(benchmark::State& state) {
  const XorCipher cipher(MakeKey());
  auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    cipher.Apply(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XorCipher)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Aes128Ctr(benchmark::State& state) {
  const Aes128 aes(TruncateToKey128(MakeKey()));
  auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    aes.ApplyCtr(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_DeriveKey(benchmark::State& state) {
  const Key256 key = MakeKey();
  uint64_t context = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveKey(key, "bench", context++));
  }
}
BENCHMARK(BM_DeriveKey);

void BM_PufBasedKeyDerivation(benchmark::State& state) {
  const Key256 puf_key = MakeKey();
  KeyConfig config;
  for (auto _ : state) {
    config.epoch++;
    benchmark::DoNotOptimize(DerivePufBasedKey(puf_key, config));
  }
}
BENCHMARK(BM_PufBasedKeyDerivation);

}  // namespace

BENCHMARK_MAIN();
