// Microbenchmarks of the crypto substrate: SHA-256, XOR-cipher
// keystream, AES-128 CTR, and the KDF — the primitives whose cost shapes
// Figs 6/7.
//
// Two harnesses, one measurement set. When the system google-benchmark
// is available (ERIC_HAVE_GOOGLE_BENCHMARK, set by CMake) it runs the
// real thing; otherwise a self-contained stopwatch harness with
// auto-scaled iteration counts measures the same primitives, so the
// target builds and runs everywhere instead of silently disappearing
// from offline toolchains.
#include <vector>

#include "crypto/aes128.h"
#include "crypto/kdf.h"
#include "crypto/sha256.h"
#include "crypto/xor_cipher.h"
#include "support/rng.h"

namespace {

using namespace eric;
using namespace eric::crypto;

std::vector<uint8_t> MakeData(size_t size) {
  Xoshiro256 rng(7);
  std::vector<uint8_t> data(size);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

Key256 MakeKey() {
  Key256 key;
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

}  // namespace

#if defined(ERIC_HAVE_GOOGLE_BENCHMARK)

#include <benchmark/benchmark.h>

namespace {

void BM_Sha256(benchmark::State& state) {
  const auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_XorCipher(benchmark::State& state) {
  const XorCipher cipher(MakeKey());
  auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    cipher.Apply(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XorCipher)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Aes128Ctr(benchmark::State& state) {
  const Aes128 aes(TruncateToKey128(MakeKey()));
  auto data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    aes.ApplyCtr(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_DeriveKey(benchmark::State& state) {
  const Key256 key = MakeKey();
  uint64_t context = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveKey(key, "bench", context++));
  }
}
BENCHMARK(BM_DeriveKey);

void BM_PufBasedKeyDerivation(benchmark::State& state) {
  const Key256 puf_key = MakeKey();
  KeyConfig config;
  for (auto _ : state) {
    config.epoch++;
    benchmark::DoNotOptimize(DerivePufBasedKey(puf_key, config));
  }
}
BENCHMARK(BM_PufBasedKeyDerivation);

}  // namespace

BENCHMARK_MAIN();

#else  // !ERIC_HAVE_GOOGLE_BENCHMARK: stopwatch fallback harness

#include <chrono>
#include <cstdio>
#include <functional>

#include "support/stopwatch.h"

namespace {

/// Prevents the optimizer from deleting a measured computation, the
/// poor-toolchain cousin of benchmark::DoNotOptimize.
template <typename T>
inline void Consume(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Runs `body` in growing batches until a run lasts >= 50 ms, then
/// reports ns/op (and MB/s when `bytes_per_op` > 0). Auto-scaling keeps
/// fast primitives (XOR over a cache line) and slow ones (software AES
/// over 256 KiB) in one table without per-case tuning.
void RunCase(const char* name, size_t bytes_per_op,
             const std::function<void()>& body) {
  constexpr double kMinWallMs = 50.0;
  uint64_t iterations = 1;
  double wall_ms = 0;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iterations; ++i) body();
    wall_ms = MillisecondsSince(start);
    if (wall_ms >= kMinWallMs || iterations >= (1ull << 30)) break;
    // Aim straight for the target window once a measurable run exists.
    iterations = wall_ms < 1.0
                     ? iterations * 8
                     : static_cast<uint64_t>(
                           static_cast<double>(iterations) *
                           (1.25 * kMinWallMs / wall_ms)) + 1;
  }
  const double ns_per_op =
      wall_ms * 1e6 / static_cast<double>(iterations);
  if (bytes_per_op > 0) {
    const double mb_per_s = (static_cast<double>(bytes_per_op) *
                             static_cast<double>(iterations)) /
                            (wall_ms / 1000.0) / (1024.0 * 1024.0);
    std::printf("%-28s %12.1f ns/op %10.1f MB/s  (%llu iters)\n", name,
                ns_per_op, mb_per_s,
                static_cast<unsigned long long>(iterations));
  } else {
    std::printf("%-28s %12.1f ns/op %10s      (%llu iters)\n", name,
                ns_per_op, "",
                static_cast<unsigned long long>(iterations));
  }
}

}  // namespace

int main() {
  std::printf("crypto microbenchmarks (stopwatch fallback harness; install "
              "google-benchmark for the full one)\n\n");

  for (size_t size : {size_t{64}, size_t{1024}, size_t{16384},
                      size_t{262144}}) {
    const auto data = MakeData(size);
    char name[64];
    std::snprintf(name, sizeof(name), "Sha256/%zu", size);
    RunCase(name, size, [&] { Consume(Sha256::Hash(data)); });
  }
  for (size_t size : {size_t{1024}, size_t{16384}, size_t{262144}}) {
    const XorCipher cipher(MakeKey());
    auto data = MakeData(size);
    char name[64];
    std::snprintf(name, sizeof(name), "XorCipher/%zu", size);
    RunCase(name, size, [&] {
      cipher.Apply(data);
      Consume(data.data());
    });
  }
  for (size_t size : {size_t{1024}, size_t{16384}, size_t{262144}}) {
    const Aes128 aes(TruncateToKey128(MakeKey()));
    auto data = MakeData(size);
    char name[64];
    std::snprintf(name, sizeof(name), "Aes128Ctr/%zu", size);
    RunCase(name, size, [&] {
      aes.ApplyCtr(data);
      Consume(data.data());
    });
  }
  {
    const Key256 key = MakeKey();
    uint64_t context = 0;
    RunCase("DeriveKey", 0, [&] { Consume(DeriveKey(key, "bench", context++)); });
  }
  {
    const Key256 puf_key = MakeKey();
    KeyConfig config;
    RunCase("PufBasedKeyDerivation", 0, [&] {
      config.epoch++;
      Consume(DerivePufBasedKey(puf_key, config));
    });
  }
  return 0;
}

#endif  // ERIC_HAVE_GOOGLE_BENCHMARK
