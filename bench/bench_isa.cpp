// Per-ISA overhead table for heterogeneous fleets: the same workload
// suite compiled and executed on an RV64GC device and an RV32I device,
// each receiving an own-ISA sealed package through its HDE.
//
// Two questions this answers, per ISA:
//   1. HDE overhead — decrypt-at-load cycles over plain execution
//      cycles (the Fig 7 metric, now split by backend). RV32I images
//      carry no compressed instructions and inline software mul/div
//      helpers, so the static image is larger and the HDE charges more.
//   2. Code size — RV32I image bytes relative to RV64GC for the same
//      sources, the cost of losing the C and M extensions.
//
// Workloads that are not 32-bit clean (their result needs 64-bit
// arithmetic, e.g. crc32's shifted constants) are skipped on RV32I and
// listed in the JSON, so the covered set is explicit rather than
// silently truncated. Emits BENCH_isa.json; gated by bench_compare.py.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "isa/isa_backend.h"
#include "support/bench_json.h"
#include "workloads/workloads.h"

using namespace eric;

namespace {

struct WorkloadRun {
  std::string name;
  uint64_t plain_cycles = 0;
  uint64_t hde_cycles = 0;
  uint64_t image_bytes = 0;
  double overhead_pct = 0.0;
  int64_t exit_code = 0;
};

struct IsaRuns {
  std::vector<WorkloadRun> runs;
  std::vector<std::string> skipped;  // name + reason, RV32I only
  double average_overhead_pct = 0.0;
  double max_overhead_pct = 0.0;
  uint64_t total_image_bytes = 0;
};

const WorkloadRun* FindRun(const IsaRuns& table, const std::string& name) {
  for (const auto& r : table.runs) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void Summarize(IsaRuns& table) {
  double sum = 0.0;
  for (const auto& r : table.runs) {
    sum += r.overhead_pct;
    table.max_overhead_pct = std::max(table.max_overhead_pct, r.overhead_pct);
    table.total_image_bytes += r.image_bytes;
  }
  if (!table.runs.empty()) {
    table.average_overhead_pct = sum / static_cast<double>(table.runs.size());
  }
}

void WriteIsaJson(JsonWriter& json, const IsaRuns& table) {
  json.BeginObject();
  json.Key("workloads");
  json.BeginArray();
  for (const auto& r : table.runs) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("plain_cycles", r.plain_cycles);
    json.Field("hde_cycles", r.hde_cycles);
    json.Field("image_bytes", r.image_bytes);
    json.Field("overhead_pct", r.overhead_pct);
    json.EndObject();
  }
  json.EndArray();
  json.Key("skipped");
  json.BeginArray();
  for (const auto& s : table.skipped) json.Value(s);
  json.EndArray();
  json.Field("average_overhead_pct", table.average_overhead_pct);
  json.Field("max_overhead_pct", table.max_overhead_pct);
  json.Field("total_image_bytes", table.total_image_bytes);
  json.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_isa.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_isa [--out FILE]\n");
      return 2;
    }
  }

  crypto::KeyConfig config;
  bool pass = true;

  std::printf("Per-ISA HDE overhead: decrypt-at-load cycles over plain "
              "execution, per backend\n");

  IsaRuns tables[isa::kNumIsaIds];
  for (uint8_t raw = 0; raw < isa::kNumIsaIds; ++raw) {
    const auto isa_id = static_cast<isa::IsaId>(raw);
    // One device per silicon flavor; a distinct seed per ISA keeps the
    // two HDE key schedules independent, like two fleet cohorts.
    core::TrustedDevice device(0x15A0 + raw, config, core::CipherKind::kXor,
                               {}, isa_id);
    core::SoftwareSource source(device.Enroll(), config);
    compiler::CompileOptions options;
    options.isa = isa_id;

    std::printf("\n[%s]\n", std::string(isa::IsaName(isa_id)).c_str());
    std::printf("%-14s %12s %12s %10s %10s\n", "workload", "plain(cyc)",
                "hde(cyc)", "image(B)", "overhead");

    IsaRuns& table = tables[raw];
    for (const auto& w : workloads::AllWorkloads()) {
      auto built = source.CompileAndPackage(w.source,
                                            core::EncryptionPolicy::Full(),
                                            options);
      if (!built.ok()) {
        // RV32I fails closed on sources it cannot honor (64-bit-only
        // constants); that is a skip, not a bench failure.
        if (isa_id != isa::IsaId::kRv64Gc) {
          table.skipped.push_back(w.name + " (compile refused)");
          std::printf("%-14s skipped: compile refused\n", w.name.c_str());
          continue;
        }
        std::printf("%-14s FAILED compile\n", w.name.c_str());
        return 1;
      }
      const auto plain = device.RunPlaintext(built->compile.program.image);
      if (isa_id != isa::IsaId::kRv64Gc) {
        const WorkloadRun* rv64 = FindRun(tables[0], w.name);
        if (rv64 == nullptr ||
            rv64->exit_code !=
                static_cast<int64_t>(plain.exec.exit_code)) {
          // Result diverges from the 64-bit run: the workload needs
          // 64-bit arithmetic, so it is not a valid RV32I comparison.
          table.skipped.push_back(w.name + " (not 32-bit clean)");
          std::printf("%-14s skipped: not 32-bit clean\n", w.name.c_str());
          continue;
        }
      }
      auto secure =
          device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
      if (!secure.ok() || secure->exec.exit_code != plain.exec.exit_code) {
        std::printf("%-14s FAILED secure run\n", w.name.c_str());
        return 1;
      }
      WorkloadRun run;
      run.name = w.name;
      run.plain_cycles = plain.exec.cycles;
      run.hde_cycles = secure->hde_cycles.total();
      run.image_bytes = built->compile.program.image.size();
      run.overhead_pct = 100.0 * static_cast<double>(run.hde_cycles) /
                         static_cast<double>(run.plain_cycles);
      run.exit_code = static_cast<int64_t>(plain.exec.exit_code);
      std::printf("%-14s %12llu %12llu %10llu %+9.2f%%\n", run.name.c_str(),
                  static_cast<unsigned long long>(run.plain_cycles),
                  static_cast<unsigned long long>(run.hde_cycles),
                  static_cast<unsigned long long>(run.image_bytes),
                  run.overhead_pct);
      table.runs.push_back(std::move(run));
    }
    Summarize(table);
    std::printf("%-14s average +%.2f %%, max +%.2f %%\n", "summary",
                table.average_overhead_pct, table.max_overhead_pct);
  }

  const IsaRuns& rv64 = tables[0];
  const IsaRuns& rv32 = tables[1];

  // RV64GC must cover the whole suite; RV32I must cover a real subset
  // (bitcount is 32-bit clean by construction and must be in it).
  if (rv64.runs.size() != workloads::AllWorkloads().size()) pass = false;
  if (rv32.runs.empty() || FindRun(rv32, "bitcount") == nullptr) pass = false;

  // Code-size ratio over the common subset only — comparing totals over
  // different workload sets would be meaningless.
  uint64_t common_rv64_bytes = 0, common_rv32_bytes = 0;
  for (const auto& r : rv32.runs) {
    const WorkloadRun* base = FindRun(rv64, r.name);
    if (base == nullptr) continue;
    common_rv64_bytes += base->image_bytes;
    common_rv32_bytes += r.image_bytes;
  }
  const double size_pct =
      common_rv64_bytes == 0
          ? 0.0
          : 100.0 * static_cast<double>(common_rv32_bytes) /
                static_cast<double>(common_rv64_bytes);
  if (common_rv64_bytes == 0) pass = false;

  std::printf("\n%-14s rv32i images are %.1f %% the bytes of rv64gc over "
              "the common %zu-workload subset\n", "code size", size_pct,
              rv32.runs.size());

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "isa");
  json.Field("policy", "full");
  json.Key("rv64gc");
  WriteIsaJson(json, rv64);
  json.Key("rv32i");
  WriteIsaJson(json, rv32);
  json.Field("rv32_image_bytes_vs_rv64gc_pct", size_pct);
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
