// Table II: FPGA area of Rocket Chip vs Rocket Chip + HDE, from the
// structural resource model (see src/hw/resource_model.h).
#include <cstdio>

#include "hw/resource_model.h"

int main() {
  std::printf("%s", eric::hw::FormatTable2().c_str());
  return 0;
}
