// Cipher ablation: ERIC's XOR decrypt-at-load vs (a) AES-CTR
// decrypt-at-load and (b) an XOM/AEGIS-style AES-per-memory-line scheme.
//
// This reproduces the paper's Sec. V argument against full-memory AES
// ("high memory latency... programs with poor cache performance experience
// an extra delay each time when trying to access the main memory", citing
// ~30 % IPC loss in AEGIS-class systems): per-line decryption charges the
// AES latency on *every* L1 miss, while ERIC pays once at load time.
#include <cstdio>

#include "core/software_source.h"
#include "core/trusted_execution.h"
#include "workloads/workloads.h"

using namespace eric;

int main() {
  crypto::KeyConfig config;

  std::printf("Cipher ablation: load-path and per-line schemes, overhead "
              "vs plain execution\n");
  std::printf("%-14s %14s %14s %16s\n", "workload", "XOR@load",
              "AES-CTR@load", "AES-per-line");

  double sum_xor = 0.0, sum_aes = 0.0, sum_line = 0.0;
  int count = 0;
  for (const auto& w : workloads::AllWorkloads()) {
    // XOR (ERIC prototype).
    core::TrustedDevice xor_device(0xAB1, config, core::CipherKind::kXor);
    core::SoftwareSource xor_source(xor_device.Enroll(), config,
                                    core::CipherKind::kXor);
    auto xor_built = xor_source.CompileAndPackage(
        w.source, core::EncryptionPolicy::Full());
    if (!xor_built.ok()) return 1;
    const auto plain =
        xor_device.RunPlaintext(xor_built->compile.program.image);
    auto xor_run = xor_device.ReceiveAndRun(
        pkg::Serialize(xor_built->packaging.package));
    if (!xor_run.ok()) return 1;

    // AES-CTR on the same load path.
    core::TrustedDevice aes_device(0xAB1, config, core::CipherKind::kAesCtr);
    core::SoftwareSource aes_source(aes_device.Enroll(), config,
                                    core::CipherKind::kAesCtr);
    auto aes_built = aes_source.CompileAndPackage(
        w.source, core::EncryptionPolicy::Full());
    if (!aes_built.ok()) return 1;
    auto aes_run = aes_device.ReceiveAndRun(
        pkg::Serialize(aes_built->packaging.package));
    if (!aes_run.ok()) return 1;

    // AES-per-line model (XOM/AEGIS-class): every L1 miss pays an AES
    // block pipeline latency on the fill path.
    const core::HdeCycleParams params;  // defaults
    const uint64_t misses =
        plain.exec.icache.misses + plain.exec.dcache.misses;
    const uint64_t per_line_cycles =
        misses * (64 / 16) * params.aes_cycles_per_block;  // 64B line

    const double base = static_cast<double>(plain.exec.cycles);
    const double xor_pct = 100.0 * xor_run->hde_cycles.total() / base;
    const double aes_pct = 100.0 * aes_run->hde_cycles.total() / base;
    const double line_pct = 100.0 * static_cast<double>(per_line_cycles) / base;
    std::printf("%-14s %+13.2f%% %+13.2f%% %+15.2f%%\n", w.name.c_str(),
                xor_pct, aes_pct, line_pct);
    sum_xor += xor_pct;
    sum_aes += aes_pct;
    sum_line += line_pct;
    ++count;
  }
  std::printf("%-14s %+13.2f%% %+13.2f%% %+15.2f%%\n", "average",
              sum_xor / count, sum_aes / count, sum_line / count);

  // The MiBench-style kernels are cache-friendly (working sets fit the
  // 16 KiB L1), which flatters per-line schemes. The paper's Sec. V
  // argument is about *cache-poor* programs — reproduce it with a
  // streaming workload whose 96 KiB working set thrashes the L1D.
  const char* cache_hostile = R"(
    var big[12288];   // 96 KiB, 6x the L1D
    fn main() {
      var pass = 0;
      var sum = 0;
      while (pass < 4) {
        var i = 0;
        while (i < 12288) {
          sum = sum + big[i];
          big[i] = sum & 0xFFFF;
          i = i + 8;   // one access per 64-byte line
        }
        pass = pass + 1;
      }
      return sum & 0xFFFF;
    }
  )";
  {
    core::TrustedDevice device(0xAB3, config, core::CipherKind::kXor);
    core::SoftwareSource source(device.Enroll(), config);
    auto built =
        source.CompileAndPackage(cache_hostile, core::EncryptionPolicy::Full());
    if (!built.ok()) return 1;
    const auto plain = device.RunPlaintext(built->compile.program.image);
    auto run = device.ReceiveAndRun(pkg::Serialize(built->packaging.package));
    if (!run.ok()) return 1;
    const core::HdeCycleParams params;
    const uint64_t misses =
        plain.exec.icache.misses + plain.exec.dcache.misses;
    const uint64_t per_line_cycles =
        misses * (64 / 16) * params.aes_cycles_per_block;
    const double base = static_cast<double>(plain.exec.cycles);
    std::printf("%-14s %+13.2f%% %13s %+15.2f%%   <-- the crossover\n",
                "stream96k", 100.0 * run->hde_cycles.total() / base, "-",
                100.0 * static_cast<double>(per_line_cycles) / base);
  }
  std::printf("\nERIC's decrypt-at-load pays once; per-line schemes pay on "
              "every miss.\nOn the cache-poor streaming workload the "
              "per-line scheme's overhead explodes\n(related work reports "
              "~30%% slowdown for AEGIS-class designs), while ERIC's\n"
              "stays bounded by package size.\n");
  return 0;
}
