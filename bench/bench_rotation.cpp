// Key-epoch rotation cost: what invalidation and re-sealing actually
// charge, and what targeted invalidation saves the rest of the fleet.
//
// The paper's group-key mechanism makes every sealed artifact a function
// of (program, key, policy); a key-epoch bump therefore invalidates a
// whole group's artifacts at once. This bench measures the deployment
// story around that cliff:
//
//   cold      first deployment across G groups — one compile, G seals.
//   warm      immediate redeploy — every artifact served from cache.
//   rotate    RotationCampaign on ONE group: epoch bump + member KMU
//             re-provisioning, targeted invalidation (only that group's
//             artifacts drop), and the re-seal redeploy of the group.
//   hot check redeploy of the untouched groups — all cache hits, proving
//             targeted invalidation (vs Clear()) kept them hot.
//
// Headline ratios (machine-portable; both sides measured on this host):
//
//   invalidation.targeted_fraction   invalidated / resident artifacts —
//                                    deterministic, 1/G by construction.
//   reseal.vs_cold_ratio             rotated group's per-device redeploy
//                                    wall over the cold per-device wall;
//                                    < 1 because the compile cache (key-
//                                    independent) survives rotation.
//   untouched_groups.hit_rate        artifact hit rate of the hot check —
//                                    deterministically 1.0.
//
// Emits BENCH_rotation.json for the perf-trajectory gate.
//
//   bench_rotation [--quick] [--out FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/rotation_campaign.h"
#include "support/bench_json.h"
#include "workloads/workloads.h"

using namespace eric;

namespace {

struct Scale {
  size_t groups = 4;
  size_t devices_per_group = 16;
  size_t workers = 4;
};

}  // namespace

int main(int argc, char** argv) {
  Scale scale;
  const char* out_path = "BENCH_rotation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      scale.groups = 3;
      scale.devices_per_group = 6;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_rotation [--quick] [--out FILE]\n");
      return 2;
    }
  }

  const auto* workload = workloads::FindWorkload("crc32");
  if (workload == nullptr) {
    std::fprintf(stderr, "crc32 workload missing\n");
    return 1;
  }

  fleet::RegistryConfig registry_config;
  registry_config.key_config.domain = "bench.rotation.v1";
  fleet::DeviceRegistry registry(registry_config);
  std::vector<fleet::GroupId> groups;
  std::vector<fleet::DeviceId> all_devices;
  for (size_t g = 0; g < scale.groups; ++g) {
    groups.push_back(registry.CreateGroup("group-" + std::to_string(g)));
    for (size_t d = 0; d < scale.devices_per_group; ++d) {
      auto id = registry.Enroll(0xB00B5 + g * 1000 + d, groups.back());
      if (!id.ok()) {
        std::fprintf(stderr, "enroll failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
      all_devices.push_back(*id);
    }
  }

  fleet::PackageCache cache;
  fleet::DeploymentEngine engine(registry, cache);

  fleet::CampaignConfig campaign;
  campaign.source = workload->source;
  campaign.policy = core::EncryptionPolicy::PartialRandom(0.5);
  campaign.devices = all_devices;
  campaign.workers = scale.workers;

  // Cold: one compile, one seal per group.
  auto cold = engine.Run(campaign);
  if (!cold.ok() || cold->succeeded != cold->targets) {
    std::fprintf(stderr, "cold campaign failed\n");
    return 1;
  }
  // Warm: everything from cache.
  auto warm = engine.Run(campaign);
  if (!warm.ok() || warm->cache_artifact_misses != 0) {
    std::fprintf(stderr, "warm campaign missed the cache\n");
    return 1;
  }
  const size_t artifacts_before = cache.Stats().artifact_entries;

  // Rotate the first group and redeploy it under the new epoch.
  fleet::RotationConfig rotation_config;
  rotation_config.group = groups.front();
  rotation_config.campaign = campaign;
  rotation_config.campaign.devices.clear();  // redeploy the group only
  fleet::RotationCampaign rotation(engine, registry, cache);
  auto rotated = rotation.Run(rotation_config);
  if (!rotated.ok()) {
    std::fprintf(stderr, "rotation failed: %s\n",
                 rotated.status().ToString().c_str());
    return 1;
  }
  const auto& reseal = rotated->rollout;

  // Hot check: the untouched groups still hit (per-wave attribution via a
  // fresh campaign over everyone but the rotated group).
  fleet::CampaignConfig untouched = campaign;
  untouched.devices.clear();
  for (size_t g = 1; g < groups.size(); ++g) {
    auto members = registry.GroupMembers(groups[g]);
    if (!members.ok()) return 1;
    untouched.devices.insert(untouched.devices.end(), members->begin(),
                             members->end());
  }
  auto hot = engine.Run(untouched);
  if (!hot.ok()) return 1;
  const uint64_t hot_requests =
      hot->cache_artifact_hits + hot->cache_artifact_misses;
  const double hot_hit_rate =
      hot_requests == 0
          ? 0.0
          : static_cast<double>(hot->cache_artifact_hits) / hot_requests;

  const double cold_per_device =
      cold->wall_ms / static_cast<double>(cold->targets);
  const double reseal_per_device =
      reseal.targets == 0
          ? 0.0
          : reseal.wall_ms / static_cast<double>(reseal.targets);
  const double reseal_vs_cold_ratio =
      cold_per_device == 0 ? 0.0 : reseal_per_device / cold_per_device;
  const double targeted_fraction =
      artifacts_before == 0
          ? 0.0
          : static_cast<double>(rotated->artifacts_invalidated) /
                static_cast<double>(artifacts_before);

  const bool pass =
      reseal.succeeded == reseal.targets &&
      rotated->members_rekeyed == scale.devices_per_group &&
      rotated->artifacts_invalidated == 1 &&  // one policy, one group key
      hot->cache_artifact_misses == 0 &&      // targeted, not Clear()
      reseal_vs_cold_ratio < 3.0;

  std::printf("fleet: %zu groups x %zu devices\n", scale.groups,
              scale.devices_per_group);
  std::printf("cold:   %.1f ms (%zu seals), warm: %.1f ms (0 seals)\n",
              cold->wall_ms, static_cast<size_t>(cold->cache_artifact_misses),
              warm->wall_ms);
  std::printf("rotate: epoch %llu -> %llu, %zu members re-keyed in %.2f ms, "
              "%zu / %zu artifacts invalidated in %.3f ms\n",
              static_cast<unsigned long long>(rotated->old_epoch),
              static_cast<unsigned long long>(rotated->new_epoch),
              rotated->members_rekeyed, rotated->bump_ms,
              rotated->artifacts_invalidated, artifacts_before,
              rotated->invalidate_ms);
  std::printf("reseal: %.1f ms for %zu targets (%.3f ms/device, %.2fx cold), "
              "untouched groups hit rate %.2f\n",
              reseal.wall_ms, reseal.targets, reseal_per_device,
              reseal_vs_cold_ratio, hot_hit_rate);
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "rotation");
  json.Field("groups", scale.groups);
  json.Field("devices_per_group", scale.devices_per_group);
  json.Field("workers", scale.workers);
  json.Key("cold");
  json.BeginObject();
  json.Field("wall_ms", cold->wall_ms);
  json.Field("seals", cold->cache_artifact_misses);
  json.Field("per_device_ms", cold_per_device);
  json.EndObject();
  json.Key("invalidation");
  json.BeginObject();
  json.Field("artifacts_before", artifacts_before);
  json.Field("artifacts_invalidated", rotated->artifacts_invalidated);
  json.Field("targeted_fraction", targeted_fraction);
  json.Field("invalidate_ms", rotated->invalidate_ms);
  json.Field("bump_ms", rotated->bump_ms);
  json.Field("members_rekeyed", rotated->members_rekeyed);
  json.EndObject();
  json.Key("reseal");
  json.BeginObject();
  json.Field("wall_ms", reseal.wall_ms);
  json.Field("targets", reseal.targets);
  json.Field("per_device_ms", reseal_per_device);
  json.Field("vs_cold_ratio", reseal_vs_cold_ratio);
  json.EndObject();
  json.Key("untouched_groups");
  json.BeginObject();
  json.Field("targets", hot->targets);
  json.Field("hit_rate", hot_hit_rate);
  json.Field("misses", hot->cache_artifact_misses);
  json.EndObject();
  json.Field("pass", pass);
  json.EndObject();
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
